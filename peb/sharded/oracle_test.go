package sharded

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/peb"
)

// The oracle suite cross-checks sharded.DB against a single peb.DB fed the
// exact same operation stream: every query answer — PRQ, PkNN, lookups,
// sizes, snapshots — must be equal (PRQ results are compared as
// UID-sorted sets, since the single tree returns scan order).

type pair struct {
	sharded *DB
	oracle  *peb.DB
}

func newPair(t *testing.T, shards int) pair {
	t.Helper()
	sh, err := Open(Options{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	or, err := peb.Open(peb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		sh.Close()
		or.Close()
	})
	return pair{sharded: sh, oracle: or}
}

func (p pair) upsert(t *testing.T, o Object) {
	t.Helper()
	serr := p.sharded.Upsert(o)
	oerr := p.oracle.Upsert(o)
	if (serr == nil) != (oerr == nil) {
		t.Fatalf("upsert %v: sharded err %v, oracle err %v", o, serr, oerr)
	}
}

func (p pair) remove(t *testing.T, uid UserID) {
	t.Helper()
	serr := p.sharded.Remove(uid)
	oerr := p.oracle.Remove(uid)
	if (serr == nil) != (oerr == nil) {
		t.Fatalf("remove %d: sharded err %v, oracle err %v", uid, serr, oerr)
	}
}

func (p pair) grant(t *testing.T, owner UserID, role Role, locr Region, tint TimeInterval) {
	t.Helper()
	if err := p.sharded.Grant(owner, role, locr, tint); err != nil {
		t.Fatal(err)
	}
	if err := p.oracle.Grant(owner, role, locr, tint); err != nil {
		t.Fatal(err)
	}
}

func (p pair) relate(t *testing.T, owner, peer UserID, role Role) {
	t.Helper()
	if err := p.sharded.DefineRelation(owner, peer, role); err != nil {
		t.Fatal(err)
	}
	if err := p.oracle.DefineRelation(owner, peer, role); err != nil {
		t.Fatal(err)
	}
}

func (p pair) encode(t *testing.T) {
	t.Helper()
	if err := p.sharded.EncodePolicies(); err != nil {
		t.Fatal(err)
	}
	if err := p.oracle.EncodePolicies(); err != nil {
		t.Fatal(err)
	}
}

// sortedByUID returns a UID-sorted copy (the sharded engine's canonical
// result order).
func sortedByUID(objs []Object) []Object {
	out := append([]Object(nil), objs...)
	sort.Slice(out, func(i, j int) bool { return out[i].UID < out[j].UID })
	return out
}

// check compares every query surface for the given issuers, regions, and
// query times.
func (p pair) check(t *testing.T, label string, issuers []UserID, regions []Region, times []float64, ks []int) {
	t.Helper()
	if sz, oz := p.sharded.Size(), p.oracle.Size(); sz != oz {
		t.Fatalf("%s: size %d vs oracle %d", label, sz, oz)
	}
	for _, issuer := range issuers {
		for _, tm := range times {
			for _, r := range regions {
				got, err := p.sharded.RangeQuery(issuer, r, tm)
				if err != nil {
					t.Fatalf("%s: sharded PRQ: %v", label, err)
				}
				want, err := p.oracle.RangeQuery(issuer, r, tm)
				if err != nil {
					t.Fatalf("%s: oracle PRQ: %v", label, err)
				}
				if !reflect.DeepEqual(got, sortedByUID(want)) {
					t.Fatalf("%s: PRQ(issuer %d, %+v, t=%g):\n sharded %v\n oracle  %v",
						label, issuer, r, tm, got, sortedByUID(want))
				}
			}
			for _, k := range ks {
				x := r999(issuer, tm)
				y := r999(issuer*31, tm)
				got, err := p.sharded.NearestNeighbors(issuer, x, y, k, tm)
				if err != nil {
					t.Fatalf("%s: sharded PkNN: %v", label, err)
				}
				want, err := p.oracle.NearestNeighbors(issuer, x, y, k, tm)
				if err != nil {
					t.Fatalf("%s: oracle PkNN: %v", label, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%s: PkNN(issuer %d, (%g,%g), k=%d, t=%g):\n sharded %v\n oracle  %v",
						label, issuer, x, y, k, tm, got, want)
				}
			}
		}
	}
}

// r999 is a deterministic pseudo-position derived from the inputs.
func r999(a UserID, tm float64) float64 {
	return float64((int(a)*2654435761 + int(tm*7)) % 999)
}

func TestShardedOracleEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	p := newPair(t, 4)

	const users = 160
	day := TimeInterval{Start: 0, End: 1440}
	space := Region{MaxX: 1000, MaxY: 1000}

	// Policies: a web of relations among the first 40 users, granting wide
	// visibility so queries have non-trivial results, plus some regional
	// grants that actually filter.
	for u := UserID(2); u <= 40; u++ {
		p.relate(t, u, 1, "friend")
		if u%2 == 0 {
			p.grant(t, u, "friend", space, day)
		} else {
			p.grant(t, u, "friend", Region{MinX: 0, MinY: 0, MaxX: 600, MaxY: 600},
				TimeInterval{Start: 0, End: 720})
		}
		if u%5 == 0 {
			p.relate(t, u, 7, "colleague")
			p.grant(t, u, "colleague", Region{MinX: 200, MinY: 200, MaxX: 900, MaxY: 900}, day)
		}
	}

	obj := func(uid int) Object {
		return Object{
			UID: UserID(uid),
			X:   rng.Float64() * 1000,
			Y:   rng.Float64() * 1000,
			VX:  rng.Float64()*6 - 3,
			VY:  rng.Float64()*6 - 3,
			T:   rng.Float64() * 50,
		}
	}
	issuers := []UserID{1, 7, 99}
	regions := []Region{
		{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000},
		{MinX: 100, MinY: 100, MaxX: 450, MaxY: 450},
		{MinX: 480, MinY: 480, MaxX: 520, MaxY: 520}, // straddles every shard boundary
		{MinX: 700, MinY: 50, MaxX: 990, MaxY: 400},
	}
	times := []float64{30, 90}
	ks := []int{1, 3, 8}

	// Phase 1: initial load through single-op upserts.
	for u := 1; u <= users; u++ {
		p.upsert(t, obj(u))
	}
	p.check(t, "loaded", issuers, regions, times, ks)

	// Phase 2: policy encoding (each shard rebuilds its own index).
	p.encode(t)
	p.check(t, "encoded", issuers, regions, times, ks)

	// Phase 3: churn — moves (many across shard boundaries), removals, and
	// policy changes, checked at intervals.
	for round := 0; round < 4; round++ {
		for i := 0; i < 60; i++ {
			u := rng.Intn(users) + 1
			switch rng.Intn(10) {
			case 0:
				if _, ok, _ := p.oracle.Lookup(UserID(u)); ok {
					p.remove(t, UserID(u))
				}
			case 1:
				p.relate(t, UserID(u), UserID(rng.Intn(users)+1), "friend")
			default:
				p.upsert(t, obj(u))
			}
		}
		p.check(t, fmt.Sprintf("churn round %d", round), issuers, regions, times, ks)
	}

	// Phase 4: batches, including one spanning every shard and one that
	// fails (remove of an unindexed user) and must leave both sides
	// untouched.
	sb := p.sharded.NewBatch()
	ob := p.oracle.NewBatch()
	for i := 0; i < 40; i++ {
		o := obj(rng.Intn(users) + 1)
		sb.Upsert(o)
		ob.Upsert(o)
	}
	sb.Grant(3, "friend", Region{MinX: 50, MinY: 50, MaxX: 800, MaxY: 800}, day)
	ob.Grant(3, "friend", Region{MinX: 50, MinY: 50, MaxX: 800, MaxY: 800}, day)
	if err := p.sharded.Apply(sb); err != nil {
		t.Fatal(err)
	}
	if err := p.oracle.Apply(ob); err != nil {
		t.Fatal(err)
	}
	p.check(t, "batched", issuers, regions, times, ks)

	before := p.sharded.Size()
	bad := p.sharded.NewBatch()
	bad.Upsert(obj(1))
	bad.Remove(UserID(users + 500)) // never indexed: the batch must fail
	if err := p.sharded.Apply(bad); err == nil {
		t.Fatal("batch with unindexed remove applied")
	}
	obad := p.oracle.NewBatch()
	obad.Upsert(obj(1))
	obad.Remove(UserID(users + 500))
	if err := p.oracle.Apply(obad); err == nil {
		t.Fatal("oracle batch with unindexed remove applied")
	}
	if p.sharded.Size() != before {
		t.Fatalf("failed batch changed size: %d -> %d", before, p.sharded.Size())
	}
	p.check(t, "after failed batch", issuers, regions, times, ks)

	// Phase 5: snapshots over the same cut answer identically, and stay
	// pinned while both sides keep mutating.
	ssnap, err := p.sharded.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer ssnap.Close()
	osnap, err := p.oracle.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer osnap.Close()
	for i := 0; i < 30; i++ {
		p.upsert(t, obj(rng.Intn(users)+1))
	}
	if ssnap.Size() != osnap.Size() {
		t.Fatalf("snapshot size %d vs oracle %d", ssnap.Size(), osnap.Size())
	}
	for _, issuer := range issuers {
		for _, r := range regions {
			got, err := ssnap.RangeQuery(issuer, r, 30)
			if err != nil {
				t.Fatal(err)
			}
			want, err := osnap.RangeQuery(issuer, r, 30)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, sortedByUID(want)) {
				t.Fatalf("snapshot PRQ(%d, %+v) diverged:\n sharded %v\n oracle  %v",
					issuer, r, got, sortedByUID(want))
			}
		}
		gotN, err := ssnap.NearestNeighbors(issuer, 400, 400, 5, 30)
		if err != nil {
			t.Fatal(err)
		}
		wantN, err := osnap.NearestNeighbors(issuer, 400, 400, 5, 30)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gotN, wantN) {
			t.Fatalf("snapshot PkNN(%d) diverged:\n sharded %v\n oracle  %v", issuer, gotN, wantN)
		}
	}
	// And the live DBs, which moved on, still agree with each other.
	p.check(t, "post-snapshot", issuers, regions, times, ks)
}

// TestShardedOracleShardCounts runs a compact oracle pass at several shard
// counts, including 1 (the degenerate router) and a count that does not
// divide the space evenly.
func TestShardedOracleShardCounts(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(7 + shards)))
			p := newPair(t, shards)
			day := TimeInterval{Start: 0, End: 1440}
			for u := UserID(2); u <= 20; u++ {
				p.relate(t, u, 1, "friend")
				p.grant(t, u, "friend", Region{MaxX: 1000, MaxY: 1000}, day)
			}
			for u := 1; u <= 80; u++ {
				p.upsert(t, Object{
					UID: UserID(u),
					X:   rng.Float64() * 1000, Y: rng.Float64() * 1000,
					VX: rng.Float64()*4 - 2, VY: rng.Float64()*4 - 2,
					T: rng.Float64() * 40,
				})
			}
			p.encode(t)
			p.check(t, "loaded",
				[]UserID{1, 50},
				[]Region{{MaxX: 1000, MaxY: 1000}, {MinX: 300, MinY: 300, MaxX: 700, MaxY: 700}},
				[]float64{20, 60},
				[]int{1, 5})
		})
	}
}
