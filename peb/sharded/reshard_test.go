package sharded

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/store"
	"repro/peb"
	"repro/peb/cq"
)

// hottestShard returns the id of the routed shard holding the most
// objects (the natural forced-split target in tests).
func hottestShard(st Stats) int {
	id, size := -1, -1
	for _, ss := range st.Shards {
		if !ss.NoRoute && ss.Size > size {
			id, size = ss.ID, ss.Size
		}
	}
	return id
}

func TestSplitAndMergeBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	db, err := Open(Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	day := TimeInterval{Start: 0, End: 1440}
	if err := db.DefineRelation(1, 99, "w"); err != nil {
		t.Fatal(err)
	}
	if err := db.Grant(1, "w", Region{MaxX: 1000, MaxY: 1000}, day); err != nil {
		t.Fatal(err)
	}
	const users = 200
	for u := 1; u <= users; u++ {
		o := Object{UID: UserID(u), X: rng.Float64() * 1000, Y: rng.Float64() * 1000, T: 1}
		if err := db.Upsert(o); err != nil {
			t.Fatal(err)
		}
	}
	epoch0 := db.Epoch()

	target := hottestShard(db.Stats())
	if err := db.Split(target); err != nil {
		t.Fatalf("split shard %d: %v", target, err)
	}
	if got := db.Shards(); got != 3 {
		t.Fatalf("Shards() = %d after split, want 3", got)
	}
	st := db.Stats()
	if st.Splits != 1 || st.Merges != 0 {
		t.Fatalf("counters after split: %d splits, %d merges", st.Splits, st.Merges)
	}
	if st.Epoch != epoch0+2 {
		t.Fatalf("epoch %d after split, want %d (flip + finalize)", st.Epoch, epoch0+2)
	}
	if db.Size() != users {
		t.Fatalf("size %d after split, want %d", db.Size(), users)
	}
	// The new shard got its id from the allocator, not a reused slot id.
	seenNew := false
	for _, ss := range st.Shards {
		if ss.ID == 2 {
			seenNew = true
		}
		if ss.NoRoute || ss.Route != ss.Cover {
			t.Fatalf("shard %d still mid-migration after Split returned: %+v", ss.ID, ss)
		}
	}
	if !seenNew {
		t.Fatalf("expected a shard with id 2 after the split: %+v", st.Shards)
	}
	// Every object now lives in the shard routing its position.
	for i, s := range db.shards {
		objs, err := s.Objects()
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range objs {
			if db.shardOf(o.X, o.Y) != i {
				t.Fatalf("user %d at (%g,%g) held by slot %d, routed to %d",
					o.UID, o.X, o.Y, i, db.shardOf(o.X, o.Y))
			}
		}
	}
	// Policies followed the split: the new shard evaluates the predicate.
	res, err := db.RangeQuery(99, Region{MaxX: 1000, MaxY: 1000}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("full-space query found nothing after split")
	}

	// A second concurrent topology change is refused while one is pending —
	// but after Split returned, pending is resolved, so a merge is fine.
	if err := db.Merge(target); err != nil {
		t.Fatalf("merge shard %d: %v", target, err)
	}
	if got := db.Shards(); got != 2 {
		t.Fatalf("Shards() = %d after merge, want 2", got)
	}
	st = db.Stats()
	if st.Splits != 1 || st.Merges != 1 {
		t.Fatalf("counters after merge: %d splits, %d merges", st.Splits, st.Merges)
	}
	if db.Size() != users {
		t.Fatalf("size %d after merge, want %d", db.Size(), users)
	}
	ts := topoState{epoch: st.Epoch, nextID: db.nextID, metas: db.metas}
	if err := ts.validate(db.grid.Order); err != nil {
		t.Fatalf("post-merge topology invalid: %v", err)
	}

	// Degenerate refusals.
	if err := db.Split(999); err == nil {
		t.Fatal("split of unknown shard accepted")
	}
	if err := db.Merge(999); err == nil {
		t.Fatal("merge of unknown shard accepted")
	}
}

func TestMergeToSingleShardAndBack(t *testing.T) {
	db, err := Open(Options{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i, q := range quadrant {
		if err := db.Upsert(Object{UID: UserID(i + 1), X: q[0], Y: q[1], T: 1}); err != nil {
			t.Fatal(err)
		}
	}
	for db.Shards() > 1 {
		id := db.Stats().Shards[0].ID
		if err := db.Merge(id); err != nil {
			t.Fatalf("merge down (at %d shards): %v", db.Shards(), err)
		}
	}
	if err := db.Merge(db.Stats().Shards[0].ID); err == nil {
		t.Fatal("merge of the sole shard accepted")
	}
	if db.Size() != 4 {
		t.Fatalf("size %d after merging to one shard", db.Size())
	}
	// And split the survivor again: the id allocator keeps moving forward.
	if err := db.Split(db.Stats().Shards[0].ID); err != nil {
		t.Fatal(err)
	}
	if db.Shards() != 2 || db.Size() != 4 {
		t.Fatalf("post-resplit: %d shards, %d users", db.Shards(), db.Size())
	}
}

// TestReshardOracleCycles forces split and merge cycles between churn
// rounds and asserts query-for-query equality with a single peb.DB
// throughout — the resharding must be invisible to every query surface.
func TestReshardOracleCycles(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	p := newPair(t, 2)
	day := TimeInterval{Start: 0, End: 1440}
	for u := UserID(2); u <= 30; u++ {
		p.relate(t, u, 1, "friend")
		if u%2 == 0 {
			p.grant(t, u, "friend", Region{MaxX: 1000, MaxY: 1000}, day)
		} else {
			p.grant(t, u, "friend", Region{MaxX: 650, MaxY: 650}, TimeInterval{Start: 0, End: 720})
		}
	}
	obj := func(uid int) Object {
		return Object{
			UID: UserID(uid),
			X:   rng.Float64() * 1000, Y: rng.Float64() * 1000,
			VX: rng.Float64()*6 - 3, VY: rng.Float64()*6 - 3,
			T: rng.Float64() * 50,
		}
	}
	const users = 120
	for u := 1; u <= users; u++ {
		p.upsert(t, obj(u))
	}
	p.encode(t)

	issuers := []UserID{1, 99}
	regions := []Region{
		{MaxX: 1000, MaxY: 1000},
		{MinX: 100, MinY: 100, MaxX: 450, MaxY: 450},
		{MinX: 480, MinY: 480, MaxX: 520, MaxY: 520},
	}
	times := []float64{30, 90}
	ks := []int{1, 5}
	churn := func() {
		for i := 0; i < 40; i++ {
			u := rng.Intn(users) + 1
			if rng.Intn(8) == 0 {
				if _, ok, _ := p.oracle.Lookup(UserID(u)); ok {
					p.remove(t, UserID(u))
					continue
				}
			}
			p.upsert(t, obj(u))
		}
	}

	p.check(t, "pre-reshard", issuers, regions, times, ks)
	for cycle := 0; cycle < 3; cycle++ {
		target := hottestShard(p.sharded.Stats())
		if err := p.sharded.Split(target); err != nil {
			t.Fatalf("cycle %d: split %d: %v", cycle, target, err)
		}
		p.check(t, fmt.Sprintf("cycle %d post-split", cycle), issuers, regions, times, ks)
		churn()
		p.check(t, fmt.Sprintf("cycle %d post-split churn", cycle), issuers, regions, times, ks)
	}
	if got := p.sharded.Shards(); got != 5 {
		t.Fatalf("%d shards after three splits, want 5", got)
	}
	for p.sharded.Shards() > 2 {
		id := p.sharded.Stats().Shards[0].ID
		if err := p.sharded.Merge(id); err != nil {
			t.Fatalf("merge %d: %v", id, err)
		}
		p.check(t, fmt.Sprintf("after merging %d", id), issuers, regions, times, ks)
		churn()
	}
	p.check(t, "post-merges", issuers, regions, times, ks)
}

// TestReshardDurability: splits and merges survive reopen — the adopted
// topology matches what was committed, and every object is where the
// routes say.
func TestReshardDurability(t *testing.T) {
	fs := store.NewCrashFS()
	opts := Options{
		Shards: 2,
		Dir:    "root",
		DB:     peb.Options{Durability: peb.DurabilitySync, FS: fs},
	}
	rng := rand.New(rand.NewSource(5))
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	const users = 80
	for u := 1; u <= users; u++ {
		o := Object{UID: UserID(u), X: rng.Float64() * 1000, Y: rng.Float64() * 1000, T: 1}
		if err := db.Upsert(o); err != nil {
			t.Fatal(err)
		}
	}
	target := hottestShard(db.Stats())
	if err := db.Split(target); err != nil {
		t.Fatal(err)
	}
	epoch := db.Epoch()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(opts)
	if err != nil {
		t.Fatalf("reopen after split: %v", err)
	}
	if re.Shards() != 3 || re.Size() != users {
		t.Fatalf("reopen: %d shards, %d users; want 3, %d", re.Shards(), re.Size(), users)
	}
	if re.Epoch() != epoch {
		t.Fatalf("reopen epoch %d, want %d", re.Epoch(), epoch)
	}
	if err := re.Merge(target); err != nil {
		t.Fatal(err)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}

	re2, err := Open(opts)
	if err != nil {
		t.Fatalf("reopen after merge: %v", err)
	}
	defer re2.Close()
	if re2.Shards() != 2 || re2.Size() != users {
		t.Fatalf("second reopen: %d shards, %d users; want 2, %d", re2.Shards(), re2.Size(), users)
	}
	// The merged-away shard's directory was reclaimed.
	ids := make(map[int]bool)
	for _, ss := range re2.Stats().Shards {
		ids[ss.ID] = true
	}
	if ids[target] {
		t.Fatalf("merged shard %d still in the topology: %v", target, ids)
	}

	// A corrupt manifest is a clear error, not a silent fresh start.
	if err := store.WriteFileAtomic(fs, "root/sharded.json", []byte("not json")); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(opts); err == nil {
		t.Fatal("corrupt manifest accepted")
	}
}

func TestLoadMeterRates(t *testing.T) {
	db, err := Open(Options{Shards: 2, LoadRateHalfLife: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	now := time.Unix(1000, 0)
	db.now = func() time.Time { return now }
	db.Stats() // anchor every meter's clock

	// 200 commits into quadrant 0 (one shard), none elsewhere.
	for i := 0; i < 200; i++ {
		if err := db.Upsert(Object{UID: UserID(i + 1), X: 250, Y: 250, T: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.RangeQuery(1, Region{MinX: 200, MinY: 200, MaxX: 300, MaxY: 300}, 1); err != nil {
		t.Fatal(err)
	}
	now = now.Add(time.Second)
	st := db.Stats()
	hot, cold := -1, -1
	for i, ss := range st.Shards {
		if ss.Commits >= 200 {
			hot = i
		} else {
			cold = i
		}
	}
	if hot < 0 || cold < 0 {
		t.Fatalf("commit counters did not separate the shards: %+v", st.Shards)
	}
	// One half-life at 200/s instantaneous: EWMA folds in half of it.
	hr := st.Shards[hot].CommitRate
	if hr < 50 || hr > 200 {
		t.Fatalf("hot shard commit rate %g, want around 100", hr)
	}
	if st.Shards[cold].CommitRate > 25 {
		t.Fatalf("cold shard commit rate %g, want near 0", st.Shards[cold].CommitRate)
	}
	if st.Shards[hot].QueryRate <= 0 {
		t.Fatalf("query rate %g after a routed query", st.Shards[hot].QueryRate)
	}

	// With no further traffic the rate decays toward zero.
	now = now.Add(10 * time.Second)
	st = db.Stats()
	if decayed := st.Shards[hot].CommitRate; decayed >= hr/4 {
		t.Fatalf("rate failed to decay: %g -> %g", hr, decayed)
	}

	// Lifetime counters never decay.
	if st.Shards[hot].Commits < 200 {
		t.Fatalf("lifetime commits %d", st.Shards[hot].Commits)
	}
}

func TestAutoReshardSplitsHotShard(t *testing.T) {
	db, err := Open(Options{
		Shards:           2,
		LoadRateHalfLife: 50 * time.Millisecond,
		AutoReshard: AutoReshardPolicy{
			Interval:        10 * time.Millisecond,
			SplitCommitRate: 50,
			MaxShards:       4,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	// Rush-hour skew: hammer one small rect so one shard's rate crosses the
	// threshold while the other idles. Every user commits once up front —
	// the loop below stops at the first split, which can fire before a
	// random stream has covered the whole population.
	rng := rand.New(rand.NewSource(9))
	const hotUsers = 64
	for u := 1; u <= hotUsers; u++ {
		o := Object{UID: UserID(u), X: 200 + rng.Float64()*100, Y: 200 + rng.Float64()*100, T: 1}
		if err := db.Upsert(o); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	var split bool
	for time.Now().Before(deadline) {
		for i := 0; i < 50; i++ {
			u := UserID(1 + rng.Intn(hotUsers))
			o := Object{UID: u, X: 200 + rng.Float64()*100, Y: 200 + rng.Float64()*100, T: 1}
			if err := db.Upsert(o); err != nil {
				t.Fatal(err)
			}
		}
		if db.Stats().Splits > 0 {
			split = true
			break
		}
	}
	if !split {
		t.Fatal("maintainer never split the hot shard")
	}
	if got := db.Shards(); got < 3 {
		t.Fatalf("Shards() = %d after automatic split", got)
	}
	if db.Size() != hotUsers {
		t.Fatalf("size %d across automatic split, want %d", db.Size(), hotUsers)
	}
}

func TestAutoReshardOptionValidation(t *testing.T) {
	bad := []Options{
		{AutoReshard: AutoReshardPolicy{Interval: time.Second, SplitCommitRate: -1}},
		{AutoReshard: AutoReshardPolicy{Interval: time.Second, SplitCommitRate: 10, MergeCommitRate: 10}},
		{AutoReshard: AutoReshardPolicy{Interval: time.Second, MinShards: 8, MaxShards: 4}},
		{LoadRateHalfLife: -time.Second},
	}
	for i, o := range bad {
		if _, err := Open(o); !errors.Is(err, peb.ErrBadOptions) {
			t.Fatalf("case %d: got %v, want ErrBadOptions", i, err)
		}
	}
	// AutoReshard + replicas is refused: splits are not coordinated with
	// follower pools yet.
	if _, err := Open(Options{
		Dir:              "x",
		DB:               peb.Options{Durability: peb.DurabilitySync, FS: store.NewCrashFS()},
		ReplicasPerShard: 1,
		AutoReshard:      AutoReshardPolicy{Interval: time.Second, SplitCommitRate: 10},
	}); !errors.Is(err, peb.ErrBadOptions) {
		t.Fatalf("AutoReshard+replicas accepted: %v", err)
	}
}

// TestCQSurvivesSplitAndMerge pins the resharding contract for standing
// queries: live range and PkNN subscriptions keep streaming across a
// split and a merge, with every delta well-formed and the mirrors equal
// to fresh one-shot queries at quiescence.
func TestCQSurvivesSplitAndMerge(t *testing.T) {
	const qt = 100.0
	rng := rand.New(rand.NewSource(13))
	db, err := Open(Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	cqSeedPolicies(t, db, rng, 24, 1000)
	c, err := AttachCQ(db)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for u := 1; u <= 24; u++ {
		if err := db.Upsert(cqRandObject(rng, UserID(u), 1, 1000)); err != nil {
			t.Fatal(err)
		}
	}

	opt := cq.SubOptions{Buffer: 4096}
	region := Region{MinX: 150, MinY: 150, MaxX: 850, MaxY: 850}
	rsub, rinit, err := c.SubscribeRange(1, region, qt, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer rsub.Close()
	rm := newCQMirror("range", false)
	rm.seedRange(rinit)
	ksub, kinit, err := c.SubscribePkNN(2, 500, 500, 6, qt, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer ksub.Close()
	km := newCQMirror("knn", true)
	km.seedKNN(kinit)

	quiet := 60 * time.Millisecond
	settle := func(label string) {
		t.Helper()
		drainQuiet(t, rsub, rm, quiet)
		rm.checkRange(t, db, 1, region, qt)
		drainQuiet(t, ksub, km, quiet)
		km.checkKNN(t, db, 2, 500, 500, 6, qt)
		_ = label
	}
	churn := func(now float64) {
		for i := 0; i < 40; i++ {
			if err := db.Upsert(cqRandObject(rng, UserID(1+rng.Intn(24)), now, 1000)); err != nil {
				t.Fatal(err)
			}
		}
	}

	churn(2)
	settle("pre-split")

	target := hottestShard(db.Stats())
	if err := db.Split(target); err != nil {
		t.Fatal(err)
	}
	settle("post-split")
	churn(3)
	settle("post-split churn")

	// Split again so the merge below crosses a boundary the subscriptions
	// watch, then merge twice to land below the starting count.
	if err := db.Split(hottestShard(db.Stats())); err != nil {
		t.Fatal(err)
	}
	churn(4)
	settle("post-second-split")

	for db.Shards() > 2 {
		id := db.Stats().Shards[0].ID
		if err := db.Merge(id); err != nil {
			t.Fatal(err)
		}
		churn(5)
		settle(fmt.Sprintf("post-merge-%d", id))
	}

	// The streams survived it all; a plain Close still works.
	rsub.Close()
	if err := rsub.Err(); err != nil {
		t.Fatalf("range subscription died with %v", err)
	}
	ksub.Close()
	if err := ksub.Err(); err != nil {
		t.Fatalf("knn subscription died with %v", err)
	}
}
