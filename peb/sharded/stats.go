package sharded

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/store"
	"repro/internal/zcurve"
	"repro/peb"
)

// defaultLoadRateHalfLife is the EWMA horizon when Options leaves
// LoadRateHalfLife zero.
const defaultLoadRateHalfLife = 10 * time.Second

// loadMeter tracks one shard's router-side load: lifetime commit and
// query counters bumped lock-free on the hot paths, folded into
// exponentially-weighted per-second rates whenever someone asks. The
// EWMA over irregular sampling uses alpha = 1 − exp(−dt/tau): a burst's
// contribution halves every half-life regardless of how often the rates
// are read.
type loadMeter struct {
	commits atomic.Uint64
	queries atomic.Uint64

	mu        sync.Mutex
	sampledAt time.Time
	lastC     uint64
	lastQ     uint64
	commitEW  float64
	queryEW   float64
}

func newLoadMeter() *loadMeter { return &loadMeter{} }

func (m *loadMeter) noteCommit() { m.commits.Add(1) }
func (m *loadMeter) noteQuery()  { m.queries.Add(1) }

// rates folds the activity since the previous fold into the EWMA and
// returns the current per-second commit and query rates. The very first
// fold only anchors the clock (no interval to rate yet).
func (m *loadMeter) rates(now time.Time, halfLife time.Duration) (commit, query float64) {
	if halfLife <= 0 {
		halfLife = defaultLoadRateHalfLife
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	c, q := m.commits.Load(), m.queries.Load()
	if m.sampledAt.IsZero() {
		m.sampledAt, m.lastC, m.lastQ = now, c, q
		return 0, 0
	}
	dt := now.Sub(m.sampledAt).Seconds()
	if dt <= 0 {
		return m.commitEW, m.queryEW
	}
	tau := halfLife.Seconds() / math.Ln2
	alpha := 1 - math.Exp(-dt/tau)
	m.commitEW += alpha * (float64(c-m.lastC)/dt - m.commitEW)
	m.queryEW += alpha * (float64(q-m.lastQ)/dt - m.queryEW)
	m.sampledAt, m.lastC, m.lastQ = now, c, q
	return m.commitEW, m.queryEW
}

// ShardStats is one shard's contribution to the aggregate.
type ShardStats struct {
	// ID is the shard's stable identity (its shard-NNN directory); the
	// slice position in Stats.Shards is its current routing slot.
	ID int
	// Route is the Hilbert range whose writes this shard owns; NoRoute
	// marks a shard draining into a merge peer (Route is meaningless
	// then). Cover is the range the shard may still hold objects for —
	// wider than Route only while a split or merge migration is in
	// flight.
	Route   zcurve.Interval
	NoRoute bool
	Cover   zcurve.Interval
	// Size is the shard's indexed population.
	Size int
	// Commits and Queries are lifetime router-side counters: commits the
	// router routed to this shard and one-shot queries that consulted it.
	Commits uint64
	Queries uint64
	// CommitRate and QueryRate are the same signals as exponentially-
	// weighted per-second rates (horizon Options.LoadRateHalfLife) — the
	// hot-shard detector's input.
	CommitRate float64
	QueryRate  float64
	// WAL is the shard's write-ahead-log activity.
	WAL peb.WALStats
	// Checkpoints is the shard's checkpoint pipeline activity.
	Checkpoints peb.CheckpointStats
	// ViewSwaps counts the shard's query-view republishes.
	ViewSwaps uint64
	// Buffer is the shard's buffer-pool activity (Misses is the paper's
	// page-I/O count); a cold shard shows up as a skewed hit ratio.
	Buffer store.BufferStats
}

// Stats is the aggregated observability view over every shard: the summed
// counters the single-tree engine exposes one DB at a time, plus the
// per-shard breakdown (the interesting number for balance: a hot shard
// shows up as a skewed CommitRate, Size, or WAL.Appends).
type Stats struct {
	// Shards holds each shard's individual counters, in slot order.
	Shards []ShardStats
	// Epoch is the topology version; Splits and Merges count completed
	// online topology changes since Open.
	Epoch  uint64
	Splits uint64
	Merges uint64
	// WAL sums the per-shard log activity.
	WAL peb.WALStats
	// Checkpoints sums the per-shard pipeline counters and Total*
	// durations; the Last* durations are the maximum across shards (the
	// stall any single commit could have seen, since shards stall
	// independently).
	Checkpoints peb.CheckpointStats
	// ViewSwaps sums the per-shard view republishes.
	ViewSwaps uint64
	// FollowerReads counts shard queries served by a replica follower;
	// PrimaryFallbacks counts queries that wanted a follower but fell back
	// to the primary (the follower could not reach the required horizon).
	// Both are zero without Options.ReplicasPerShard.
	FollowerReads    uint64
	PrimaryFallbacks uint64
	// Buffer sums the per-shard buffer-pool counters.
	Buffer store.BufferStats
	// TxnDecisions counts 2PC verdicts in the router's decision log since
	// its last compaction; TxnLogBytes is that log's size on disk. Both are
	// zero without durability.
	TxnDecisions uint64
	TxnLogBytes  int64
}

// Stats returns the aggregated counters since Open.
func (db *DB) Stats() Stats {
	db.smu.RLock()
	defer db.smu.RUnlock()
	out := Stats{Shards: make([]ShardStats, len(db.shards))}
	if db.closed {
		return out
	}
	now := db.now()
	for i, s := range db.shards {
		sm := db.metas[i]
		cr, qr := sm.load.rates(now, db.opts.LoadRateHalfLife)
		ss := ShardStats{
			ID:          sm.id,
			Route:       sm.route,
			NoRoute:     sm.noRoute,
			Cover:       sm.cover,
			Size:        s.Size(),
			Commits:     sm.load.commits.Load(),
			Queries:     sm.load.queries.Load(),
			CommitRate:  cr,
			QueryRate:   qr,
			WAL:         s.WALStats(),
			Checkpoints: s.CheckpointStats(),
			ViewSwaps:   s.ViewSwaps(),
			Buffer:      s.IOStats(),
		}
		out.Shards[i] = ss

		out.Buffer.Hits += ss.Buffer.Hits
		out.Buffer.Misses += ss.Buffer.Misses
		out.Buffer.Evictions += ss.Buffer.Evictions
		out.Buffer.WriteBack += ss.Buffer.WriteBack

		out.WAL.Appends += ss.WAL.Appends
		out.WAL.Syncs += ss.WAL.Syncs
		out.WAL.BytesAppended += ss.WAL.BytesAppended
		out.WAL.SegmentsSealed += ss.WAL.SegmentsSealed
		out.WAL.SegmentsRemoved += ss.WAL.SegmentsRemoved
		out.ViewSwaps += ss.ViewSwaps

		c := &out.Checkpoints
		c.Checkpoints += ss.Checkpoints.Checkpoints
		c.Coalesced += ss.Checkpoints.Coalesced
		c.AutoTriggered += ss.Checkpoints.AutoTriggered
		c.TotalCut += ss.Checkpoints.TotalCut
		c.TotalBuild += ss.Checkpoints.TotalBuild
		c.TotalPublish += ss.Checkpoints.TotalPublish
		c.PagesFlushed += ss.Checkpoints.PagesFlushed
		c.PagesReclaimed += ss.Checkpoints.PagesReclaimed
		c.WALBytesTruncated += ss.Checkpoints.WALBytesTruncated
		c.WALTailBytesRewritten += ss.Checkpoints.WALTailBytesRewritten
		c.WALSegmentsRemoved += ss.Checkpoints.WALSegmentsRemoved
		if ss.Checkpoints.LastCut > c.LastCut {
			c.LastCut = ss.Checkpoints.LastCut
		}
		if ss.Checkpoints.LastBuild > c.LastBuild {
			c.LastBuild = ss.Checkpoints.LastBuild
		}
		if ss.Checkpoints.LastPublish > c.LastPublish {
			c.LastPublish = ss.Checkpoints.LastPublish
		}
	}
	out.Epoch = db.epoch
	out.Splits = db.splits.Load()
	out.Merges = db.merges.Load()
	out.FollowerReads = db.followerReads.Load()
	out.PrimaryFallbacks = db.primaryFallbacks.Load()
	db.txnMu.Lock()
	out.TxnDecisions = db.txnDecisions
	if db.txnLog != nil {
		out.TxnLogBytes = db.txnLog.Size()
	}
	db.txnMu.Unlock()
	return out
}
