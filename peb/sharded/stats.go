package sharded

import (
	"repro/peb"
)

// ShardStats is one shard's contribution to the aggregate.
type ShardStats struct {
	// Size is the shard's indexed population.
	Size int
	// WAL is the shard's write-ahead-log activity.
	WAL peb.WALStats
	// Checkpoints is the shard's checkpoint pipeline activity.
	Checkpoints peb.CheckpointStats
	// ViewSwaps counts the shard's query-view republishes.
	ViewSwaps uint64
}

// Stats is the aggregated observability view over every shard: the summed
// counters the single-tree engine exposes one DB at a time, plus the
// per-shard breakdown (the interesting number for balance: a hot shard
// shows up as a skewed Size or WAL.Appends).
type Stats struct {
	// Shards holds each shard's individual counters, in shard order.
	Shards []ShardStats
	// WAL sums the per-shard log activity.
	WAL peb.WALStats
	// Checkpoints sums the per-shard pipeline counters and Total*
	// durations; the Last* durations are the maximum across shards (the
	// stall any single commit could have seen, since shards stall
	// independently).
	Checkpoints peb.CheckpointStats
	// ViewSwaps sums the per-shard view republishes.
	ViewSwaps uint64
	// FollowerReads counts shard queries served by a replica follower;
	// PrimaryFallbacks counts queries that wanted a follower but fell back
	// to the primary (the follower could not reach the required horizon).
	// Both are zero without Options.ReplicasPerShard.
	FollowerReads    uint64
	PrimaryFallbacks uint64
}

// Stats returns the aggregated counters since Open.
func (db *DB) Stats() Stats {
	db.smu.RLock()
	defer db.smu.RUnlock()
	out := Stats{Shards: make([]ShardStats, len(db.shards))}
	if db.closed {
		return out
	}
	for i, s := range db.shards {
		ss := ShardStats{
			Size:        s.Size(),
			WAL:         s.WALStats(),
			Checkpoints: s.CheckpointStats(),
			ViewSwaps:   s.ViewSwaps(),
		}
		out.Shards[i] = ss

		out.WAL.Appends += ss.WAL.Appends
		out.WAL.Syncs += ss.WAL.Syncs
		out.WAL.BytesAppended += ss.WAL.BytesAppended
		out.WAL.SegmentsSealed += ss.WAL.SegmentsSealed
		out.WAL.SegmentsRemoved += ss.WAL.SegmentsRemoved
		out.ViewSwaps += ss.ViewSwaps

		c := &out.Checkpoints
		c.Checkpoints += ss.Checkpoints.Checkpoints
		c.Coalesced += ss.Checkpoints.Coalesced
		c.AutoTriggered += ss.Checkpoints.AutoTriggered
		c.TotalCut += ss.Checkpoints.TotalCut
		c.TotalBuild += ss.Checkpoints.TotalBuild
		c.TotalPublish += ss.Checkpoints.TotalPublish
		c.PagesFlushed += ss.Checkpoints.PagesFlushed
		c.PagesReclaimed += ss.Checkpoints.PagesReclaimed
		c.WALBytesTruncated += ss.Checkpoints.WALBytesTruncated
		c.WALTailBytesRewritten += ss.Checkpoints.WALTailBytesRewritten
		c.WALSegmentsRemoved += ss.Checkpoints.WALSegmentsRemoved
		if ss.Checkpoints.LastCut > c.LastCut {
			c.LastCut = ss.Checkpoints.LastCut
		}
		if ss.Checkpoints.LastBuild > c.LastBuild {
			c.LastBuild = ss.Checkpoints.LastBuild
		}
		if ss.Checkpoints.LastPublish > c.LastPublish {
			c.LastPublish = ss.Checkpoints.LastPublish
		}
	}
	out.FollowerReads = db.followerReads.Load()
	out.PrimaryFallbacks = db.primaryFallbacks.Load()
	return out
}
