package sharded

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/store"
	"repro/peb"
)

func TestShardedFollowerValidation(t *testing.T) {
	if _, err := Open(Options{ReplicasPerShard: -1}); !errors.Is(err, peb.ErrBadOptions) {
		t.Fatalf("negative replicas: %v", err)
	}
	if _, err := Open(Options{ReplicasPerShard: 1}); !errors.Is(err, peb.ErrBadOptions) {
		t.Fatalf("replicas without durability: %v", err)
	}
}

// newFollowerPair is newPair with a durable sharded side running follower
// reads: every query the oracle comparison issues is answered by a
// replica (or a deliberate primary fallback) instead of a shard primary.
func newFollowerPair(t *testing.T, shards, replicas int, staleness uint64) pair {
	t.Helper()
	fs := store.NewCrashFS()
	sh, err := Open(Options{
		Shards: shards,
		Dir:    "frdb",
		DB: peb.Options{
			Durability:      peb.DurabilityGrouped,
			FS:              fs,
			WALSegmentBytes: 1 << 10,
		},
		ReplicasPerShard: replicas,
		StalenessBound:   staleness,
	})
	if err != nil {
		t.Fatal(err)
	}
	or, err := peb.Open(peb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		sh.Close()
		or.Close()
	})
	return pair{sharded: sh, oracle: or}
}

// TestShardedFollowerOracleEquivalence is the routed follower-read
// oracle: a sharded DB whose queries are served by replicas must answer
// exactly like a single-tree DB fed the same operations — across policy
// changes, re-homing movement, removes, an encode rebuild, and a
// checkpoint that drops covered segments mid-history.
func TestShardedFollowerOracleEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	p := newFollowerPair(t, 4, 2, 0)

	issuers := []UserID{1, 2, 3, 50}
	regions := []Region{
		{MinX: 0, MinY: 0, MaxX: 999, MaxY: 999},
		{MinX: 200, MinY: 200, MaxX: 600, MaxY: 600},
		{MinX: 700, MinY: 100, MaxX: 950, MaxY: 450},
	}
	times := []float64{5, 30}
	ks := []int{1, 5}

	for i := 1; i <= 60; i++ {
		p.upsert(t, Object{UID: UserID(i), X: float64(rng.Intn(1000)), Y: float64(rng.Intn(1000)), T: 1})
	}
	for _, iss := range issuers {
		for u := 1; u <= 60; u += 7 {
			if UserID(u) == iss {
				// No self-relations: a self-related issuer's own entry is
				// excluded from the SV search and surfaces only through
				// incidental leaf co-location, which legitimately differs
				// between the single tree and the shard trees.
				continue
			}
			p.relate(t, UserID(u), iss, "f")
		}
	}
	for u := 1; u <= 60; u += 3 {
		p.grant(t, UserID(u), "f", Region{MaxX: 1000, MaxY: 1000}, TimeInterval{Start: 0, End: 1440})
	}
	p.check(t, "after setup", issuers, regions, times, ks)

	// Movement (with cross-shard re-homing), removes, and more grants.
	for i := 1; i <= 60; i++ {
		p.upsert(t, Object{UID: UserID(i), X: float64(rng.Intn(1000)), Y: float64(rng.Intn(1000)), T: 10})
	}
	for u := 5; u <= 20; u += 5 {
		p.remove(t, UserID(u))
	}
	p.check(t, "after churn", issuers, regions, times, ks)

	p.encode(t)
	if err := p.sharded.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 30; i <= 90; i++ {
		p.upsert(t, Object{UID: UserID(i), X: float64(rng.Intn(1000)), Y: float64(rng.Intn(1000)), T: 20})
	}
	p.check(t, "after encode+checkpoint", issuers, regions, times, ks)

	st := p.sharded.Stats()
	if st.FollowerReads == 0 {
		t.Fatal("FollowerReads = 0: the oracle queries never touched a replica")
	}
	if st.WAL.SegmentsSealed == 0 {
		t.Error("aggregate SegmentsSealed = 0, want > 0 (tiny segment size)")
	}
	if st.Checkpoints.WALSegmentsRemoved == 0 {
		t.Error("aggregate WALSegmentsRemoved = 0, want > 0")
	}
	if st.Checkpoints.WALTailBytesRewritten != 0 {
		t.Errorf("aggregate WALTailBytesRewritten = %d, want 0", st.Checkpoints.WALTailBytesRewritten)
	}
}

// TestShardedFollowerReadYourWrites interleaves writes and reads from
// many goroutines: a query issued right after a write, by a viewer the
// written user has granted visibility to, must include that write even
// when a follower serves it (the router's per-shard horizon check plus
// the follower's synchronous catch-up guarantee it). The viewer is in
// every written user's friend list up front, so the PRQ searches each
// written user's sequence value directly — visibility is guaranteed by
// the policy, not by incidental leaf co-location.
func TestShardedFollowerReadYourWrites(t *testing.T) {
	p := newFollowerPair(t, 4, 1, 0)
	db := p.sharded
	const viewer = UserID(9)
	const writers, rounds = 4, 25
	for w := 0; w < writers; w++ {
		for i := 0; i < rounds; i++ {
			uid := UserID(100+w*1000) + UserID(i)
			if err := db.DefineRelation(uid, viewer, "f"); err != nil {
				t.Fatal(err)
			}
			if err := db.Grant(uid, "f", Region{MaxX: 1000, MaxY: 1000}, TimeInterval{Start: 0, End: 1440}); err != nil {
				t.Fatal(err)
			}
		}
	}

	var wg sync.WaitGroup
	errc := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := UserID(100 + w*1000)
			for i := 0; i < rounds; i++ {
				uid := base + UserID(i)
				o := Object{UID: uid, X: float64((w*251 + i*37) % 1000), Y: float64((w*653 + i*41) % 1000), T: float64(i)}
				if err := db.Upsert(o); err != nil {
					errc <- err
					return
				}
				res, err := db.RangeQuery(viewer, Region{MinX: 0, MinY: 0, MaxX: 999, MaxY: 999}, o.T)
				if err != nil {
					errc <- err
					return
				}
				found := false
				for _, ro := range res {
					if ro.UID == uid && ro.T == o.T {
						found = true
						break
					}
				}
				if !found {
					errc <- fmt.Errorf("writer %d round %d: own write of u%d not visible in follower read", w, i, uid)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
	st := db.Stats()
	if st.FollowerReads == 0 {
		t.Fatal("FollowerReads = 0: reads never reached a follower")
	}
	t.Logf("follower reads %d, primary fallbacks %d", st.FollowerReads, st.PrimaryFallbacks)
}

// TestShardedFollowerHorizons: the lag observability hook reports one
// horizon per attached replica per shard.
func TestShardedFollowerHorizons(t *testing.T) {
	p := newFollowerPair(t, 2, 3, 0)
	for i := 1; i <= 10; i++ {
		p.upsert(t, Object{UID: UserID(i), X: float64(i * 97 % 1000), Y: float64(i * 61 % 1000), T: 0})
	}
	hs := p.sharded.FollowerHorizons()
	if len(hs) != 2 {
		t.Fatalf("FollowerHorizons shards = %d, want 2", len(hs))
	}
	for i, pool := range hs {
		if len(pool) != 3 {
			t.Fatalf("shard %d pool = %d horizons, want 3", i, len(pool))
		}
	}
}

// TestShardedFollowerStaleness: a generous staleness bound lets followers
// serve without any catch-up (no fallback pressure), and results are
// still valid objects from the committed history.
func TestShardedFollowerStaleness(t *testing.T) {
	p := newFollowerPair(t, 2, 2, 1<<20)
	db := p.sharded
	for i := 1; i <= 30; i++ {
		p.upsert(t, Object{UID: UserID(i), X: float64(i * 37 % 1000), Y: float64(i * 91 % 1000), T: 1})
	}
	for i := 0; i < 20; i++ {
		if _, err := db.RangeQuery(1, Region{MaxX: 999, MaxY: 999}, 2); err != nil {
			t.Fatal(err)
		}
	}
	st := db.Stats()
	if st.FollowerReads == 0 {
		t.Fatal("FollowerReads = 0 under a permissive staleness bound")
	}
	if st.PrimaryFallbacks != 0 {
		t.Fatalf("PrimaryFallbacks = %d, want 0: the bound admits any lag", st.PrimaryFallbacks)
	}
}
