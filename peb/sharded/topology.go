package sharded

import (
	"fmt"
	"path/filepath"
	"sort"

	"repro/internal/store"
	"repro/internal/zcurve"
	"repro/peb"
)

// Dynamic shard topology. PR 5 fixed the shard count at creation; the
// topology now lives in the manifest and changes online: a hot shard's
// Hilbert range splits at its population median, a pair of cold adjacent
// shards merges (see reshard.go). Every shard therefore carries two curve
// intervals:
//
//   - route: where NEW writes for these values go. Routes are disjoint
//     and exhaust the curve at every moment, so every position has exactly
//     one write owner. A shard being merged away has no route at all.
//   - cover: the values the shard may still HOLD objects for. cover ⊇
//     route; the two differ only while a migration is in flight — the
//     split source still covers the half it no longer routes, the merge
//     source still covers the range it is draining — and queries prune by
//     cover, so in-flight migrations are invisible to readers.
//
// Shard identity is a small integer id that names the on-disk directory
// (shard-NNN) and never changes; ids are allocated monotonically and never
// reused, so a crash-orphaned directory can never be mistaken for a live
// shard's. The slice position of a shard in DB.shards/DB.metas (its
// "slot") is an in-memory artifact that shifts when a merge removes a
// shard.

// shardMeta is one shard's place in the topology, parallel to DB.shards.
type shardMeta struct {
	id      int
	route   zcurve.Interval
	noRoute bool // true while the shard drains into a merge peer
	cover   zcurve.Interval
	load    *loadMeter
}

// pendingKind names the two in-flight topology changes.
type pendingKind string

const (
	pendingSplit pendingKind = "split"
	pendingMerge pendingKind = "merge"
)

// pendingOp records an in-flight split or merge. It is persisted in the
// manifest: its presence after a crash tells recovery which migration to
// roll forward (the manifest write that introduces it is the atomic
// commit point of the topology change — before it, the change does not
// exist; after it, it always completes).
type pendingOp struct {
	Kind pendingKind `json:"kind"`
	// Src is the shard being drained: the split source (still covering
	// the half it gave away) or the merge source (no longer routing).
	Src int `json:"src"`
	// Dst is the shard receiving the moving objects: the split's new
	// shard or the merge's absorbing neighbor.
	Dst int `json:"dst"`
	// SplitAt is the last curve value the split source keeps (split only).
	SplitAt uint64 `json:"split_at,omitempty"`
}

// manifest is the router's persisted identity and topology. Version 1
// (PR 5) recorded only a fixed shard count; version 2 records the full
// range list plus any in-flight topology change.
type manifest struct {
	Version   int
	Shards    int // informational in v2 (len(Topology)); authoritative in v1
	SpaceSide float64
	GridOrder int

	// v2 fields.
	Epoch    uint64          `json:"Epoch,omitempty"`
	NextID   int             `json:"NextID,omitempty"`
	Topology []manifestShard `json:"Topology,omitempty"`
	Pending  *pendingOp      `json:"Pending,omitempty"`
}

// manifestShard is one topology entry in the manifest.
type manifestShard struct {
	ID      int
	RouteLo uint64
	RouteHi uint64
	NoRoute bool `json:",omitempty"`
	CoverLo uint64
	CoverHi uint64
}

const manifestVersion = 2

// topoState is the in-memory image of the manifest's topology section.
type topoState struct {
	epoch   uint64
	nextID  int
	metas   []shardMeta
	pending *pendingOp
}

// freshTopo builds the creation-time topology: n shards with ids 0..n-1
// over near-equal ranges, exactly the PR 5 static layout.
func freshTopo(order, n int) topoState {
	ivs := zcurve.SplitRange(order, n)
	metas := make([]shardMeta, n)
	for i, iv := range ivs {
		metas[i] = shardMeta{id: i, route: iv, cover: iv, load: newLoadMeter()}
	}
	return topoState{epoch: 1, nextID: n, metas: metas}
}

// toManifest serializes the topology section.
func (ts topoState) toManifest(side float64) manifest {
	m := manifest{
		Version:   manifestVersion,
		Shards:    len(ts.metas),
		SpaceSide: side,
		GridOrder: peb.DefaultGridOrder,
		Epoch:     ts.epoch,
		NextID:    ts.nextID,
		Pending:   ts.pending,
	}
	for _, sm := range ts.metas {
		m.Topology = append(m.Topology, manifestShard{
			ID:      sm.id,
			RouteLo: sm.route.Lo, RouteHi: sm.route.Hi, NoRoute: sm.noRoute,
			CoverLo: sm.cover.Lo, CoverHi: sm.cover.Hi,
		})
	}
	return m
}

// topoFromManifest rebuilds the in-memory topology from a parsed manifest,
// upgrading a v1 record (fixed count, no explicit ranges) to the v2 form.
func topoFromManifest(m manifest, order int) (topoState, error) {
	if m.Version == 1 {
		if m.Shards < 1 {
			return topoState{}, fmt.Errorf("sharded: v1 manifest holds %d shards", m.Shards)
		}
		return freshTopo(order, m.Shards), nil
	}
	if len(m.Topology) == 0 {
		return topoState{}, fmt.Errorf("sharded: manifest v%d carries no topology", m.Version)
	}
	ts := topoState{epoch: m.Epoch, nextID: m.NextID, pending: m.Pending}
	for _, e := range m.Topology {
		sm := shardMeta{
			id:      e.ID,
			route:   zcurve.Interval{Lo: e.RouteLo, Hi: e.RouteHi},
			noRoute: e.NoRoute,
			cover:   zcurve.Interval{Lo: e.CoverLo, Hi: e.CoverHi},
			load:    newLoadMeter(),
		}
		if sm.id < 0 || sm.id >= ts.nextID {
			return topoState{}, fmt.Errorf("sharded: manifest shard id %d outside [0,%d)", sm.id, ts.nextID)
		}
		ts.metas = append(ts.metas, sm)
	}
	if err := ts.validate(order); err != nil {
		return topoState{}, err
	}
	return ts, nil
}

// validate checks the topology invariants: unique ids, covers containing
// routes, and routes that partition the curve exactly.
func (ts topoState) validate(order int) error {
	total := uint64(1) << uint(2*order)
	seen := make(map[int]bool, len(ts.metas))
	var routed []zcurve.Interval
	for _, sm := range ts.metas {
		if seen[sm.id] {
			return fmt.Errorf("sharded: manifest repeats shard id %d", sm.id)
		}
		seen[sm.id] = true
		if sm.cover.Hi < sm.cover.Lo || sm.cover.Hi >= total {
			return fmt.Errorf("sharded: shard %d cover %v outside the curve", sm.id, sm.cover)
		}
		if sm.noRoute {
			continue
		}
		if sm.route.Hi < sm.route.Lo {
			return fmt.Errorf("sharded: shard %d route %v inverted", sm.id, sm.route)
		}
		if sm.route.Lo < sm.cover.Lo || sm.route.Hi > sm.cover.Hi {
			return fmt.Errorf("sharded: shard %d route %v escapes cover %v", sm.id, sm.route, sm.cover)
		}
		routed = append(routed, sm.route)
	}
	sort.Slice(routed, func(a, b int) bool { return routed[a].Lo < routed[b].Lo })
	var next uint64
	for _, iv := range routed {
		if iv.Lo != next {
			return fmt.Errorf("sharded: routes leave a gap or overlap at value %d", next)
		}
		next = iv.Hi + 1
	}
	if next != total {
		return fmt.Errorf("sharded: routes cover %d of %d curve values", next, total)
	}
	if p := ts.pending; p != nil {
		if !seen[p.Src] || !seen[p.Dst] {
			return fmt.Errorf("sharded: pending %s names unknown shards %d->%d", p.Kind, p.Src, p.Dst)
		}
	}
	return nil
}

// routeEntry maps one routed interval to its shard slot, for shardOf.
type routeEntry struct {
	iv   zcurve.Interval
	slot int
}

// rebuildRoutes derives the sorted route table and the per-slot cover
// list from the metas. Caller holds the write barrier (or is still
// constructing the DB). Both slices are rebuilt fresh rather than
// mutated: concurrent readers under the read barrier never see them
// mid-update across a barrier release.
func (db *DB) rebuildRoutes() {
	routes := make([]routeEntry, 0, len(db.metas))
	covers := make([]zcurve.Interval, len(db.metas))
	for i, sm := range db.metas {
		if !sm.noRoute {
			routes = append(routes, routeEntry{iv: sm.route, slot: i})
		}
		covers[i] = sm.cover
	}
	sort.Slice(routes, func(a, b int) bool { return routes[a].iv.Lo < routes[b].iv.Lo })
	db.routes = routes
	db.covers = covers
}

// slotOf returns the slice position of the shard with the given id.
func (db *DB) slotOf(id int) (int, bool) {
	for i, sm := range db.metas {
		if sm.id == id {
			return i, true
		}
	}
	return 0, false
}

// writeManifest persists the current topology; the atomic rename inside is
// the durable commit point of whatever change the caller staged.
func (db *DB) writeManifest() error {
	return db.persistTopo(topoState{epoch: db.epoch, nextID: db.nextID, metas: db.metas, pending: db.pending})
}

// persistTopo persists an explicit topology image — used by merge
// finalization, which must commit the post-merge manifest BEFORE mutating
// memory irreversibly. Memory deployments (no Dir) skip persistence —
// their topology lives and dies with the process.
func (db *DB) persistTopo(ts topoState) error {
	if db.opts.Dir == "" {
		return nil
	}
	data, err := marshalManifest(ts.toManifest(db.sideLen()))
	if err != nil {
		return err
	}
	path := filepath.Join(db.opts.Dir, "sharded.json")
	if err := store.WriteFileAtomic(db.fs, path, data); err != nil {
		return fmt.Errorf("sharded: write manifest: %w", err)
	}
	return nil
}

// sideLen is the configured space side with the default applied.
func (db *DB) sideLen() float64 {
	if db.opts.DB.SpaceSide != 0 {
		return db.opts.DB.SpaceSide
	}
	return peb.DefaultSpaceSide
}

// loadTopology reads (or initializes) the manifest and returns the
// topology to open under. Options.Shards counts only at creation: an
// existing directory's topology is adopted as-is — it may have split and
// merged far away from the initial count — and only a genuinely corrupt
// or incompatible manifest is an error.
func loadTopology(fsys store.VFS, opts Options) (topoState, error) {
	side := opts.DB.SpaceSide
	if side == 0 {
		side = peb.DefaultSpaceSide
	}
	if opts.Dir == "" {
		return freshTopo(peb.DefaultGridOrder, opts.Shards), nil
	}
	path := filepath.Join(opts.Dir, "sharded.json")
	ok, err := fsys.Exists(path)
	if err != nil {
		return topoState{}, fmt.Errorf("sharded: probe manifest: %w", err)
	}
	if !ok {
		ts := freshTopo(peb.DefaultGridOrder, opts.Shards)
		data, err := marshalManifest(ts.toManifest(side))
		if err != nil {
			return topoState{}, err
		}
		// Written before any shard is created, so a crash can never leave
		// shards whose layout the next open has to guess.
		if err := store.WriteFileAtomic(fsys, path, data); err != nil {
			return topoState{}, fmt.Errorf("sharded: write manifest: %w", err)
		}
		return ts, nil
	}
	data, err := fsys.ReadFile(path)
	if err != nil {
		return topoState{}, fmt.Errorf("sharded: read manifest: %w", err)
	}
	m, err := unmarshalManifest(data)
	if err != nil {
		return topoState{}, err
	}
	if m.SpaceSide != side {
		return topoState{}, fmt.Errorf("sharded: directory space side %g does not match options %g", m.SpaceSide, side)
	}
	if m.GridOrder != peb.DefaultGridOrder {
		// Shard ranges are value ranges on this curve order; reopening
		// them on a different order would silently misroute queries.
		return topoState{}, fmt.Errorf("sharded: directory grid order %d does not match engine order %d", m.GridOrder, peb.DefaultGridOrder)
	}
	return topoFromManifest(m, peb.DefaultGridOrder)
}
