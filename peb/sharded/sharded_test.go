package sharded

import (
	"errors"
	"testing"

	"repro/internal/store"
	"repro/internal/zcurve"
	"repro/peb"
)

func TestShardedOptionsValidation(t *testing.T) {
	if _, err := Open(Options{Shards: -1}); !errors.Is(err, peb.ErrBadOptions) {
		t.Fatalf("negative shards: %v", err)
	}
	if _, err := Open(Options{DB: peb.Options{Path: "x.idx"}}); !errors.Is(err, peb.ErrBadOptions) {
		t.Fatalf("explicit per-shard path: %v", err)
	}
	if _, err := Open(Options{DB: peb.Options{Durability: peb.DurabilitySync}}); !errors.Is(err, peb.ErrBadOptions) {
		t.Fatalf("durability without dir: %v", err)
	}
	if _, err := Open(Options{DB: peb.Options{TxnResolve: func(uint64) bool { return true }}}); !errors.Is(err, peb.ErrBadOptions) {
		t.Fatalf("caller-supplied TxnResolve: %v", err)
	}
}

func TestShardedRehomeOnMove(t *testing.T) {
	db, err := Open(Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	// Walk one user through all four quadrants; it must exist exactly once
	// throughout, and the per-shard sizes must follow it.
	for step, q := range quadrant {
		if err := db.Upsert(Object{UID: 42, X: q[0], Y: q[1], T: float64(step)}); err != nil {
			t.Fatal(err)
		}
		if db.Size() != 1 {
			t.Fatalf("step %d: size %d, want 1", step, db.Size())
		}
		st := db.Stats()
		total, nonEmpty := 0, 0
		for _, ss := range st.Shards {
			total += ss.Size
			if ss.Size > 0 {
				nonEmpty++
			}
		}
		if total != 1 || nonEmpty != 1 {
			t.Fatalf("step %d: population spread %v", step, st.Shards)
		}
		o, ok, err := db.Lookup(42)
		if err != nil || !ok || o.T != float64(step) {
			t.Fatalf("step %d: lookup %v %v %v", step, o, ok, err)
		}
	}
	if err := db.Remove(42); err != nil {
		t.Fatal(err)
	}
	if err := db.Remove(42); err == nil {
		t.Fatal("double remove succeeded")
	}
}

func TestShardedReopen(t *testing.T) {
	fs := store.NewCrashFS()
	opts := Options{
		Shards: 4,
		Dir:    "db",
		DB:     peb.Options{Durability: peb.DurabilityGrouped, FS: fs},
	}
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range quadrant {
		if err := db.Upsert(Object{UID: UserID(i + 1), X: q[0], Y: q[1], T: 5}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.DefineRelation(2, 1, "friend"); err != nil {
		t.Fatal(err)
	}
	if err := db.Grant(2, "friend", Region{MaxX: 1000, MaxY: 1000}, TimeInterval{End: 1440}); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := db.Upsert(Object{UID: 9, X: 500, Y: 500, T: 6}); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Size() != 5 {
		t.Fatalf("reopened size %d, want 5", re.Size())
	}
	for i := range quadrant {
		if _, ok, _ := re.Lookup(UserID(i + 1)); !ok {
			t.Fatalf("user %d lost across reopen", i+1)
		}
	}
	if _, ok, _ := re.Lookup(9); !ok {
		t.Fatal("post-checkpoint commit lost across reopen")
	}
	if !re.Allows(2, 1, 250, 750, 30) {
		t.Fatal("policy lost across reopen")
	}

	re.Close()

	// Options.Shards counts only at creation: a reopen with a different
	// count adopts the manifest's topology instead of erroring.
	other := opts
	other.Shards = 8
	re2, err := Open(other)
	if err != nil {
		t.Fatalf("reopen with different Shards option refused: %v", err)
	}
	defer re2.Close()
	if got := re2.Shards(); got != 4 {
		t.Fatalf("reopen adopted %d shards, want the manifest's 4", got)
	}
	if re2.Size() != 5 {
		t.Fatalf("size %d after topology-adopting reopen, want 5", re2.Size())
	}
}

func TestShardedStatsAggregation(t *testing.T) {
	fs := store.NewCrashFS()
	db, err := Open(Options{
		Shards: 2,
		Dir:    "s",
		DB:     peb.Options{Durability: peb.DurabilitySync, FS: fs},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i, q := range quadrant {
		if err := db.Upsert(Object{UID: UserID(i + 1), X: q[0], Y: q[1], T: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	if len(st.Shards) != 2 {
		t.Fatalf("stats cover %d shards", len(st.Shards))
	}
	var appends, swaps uint64
	var sizes int
	for _, ss := range st.Shards {
		appends += ss.WAL.Appends
		swaps += ss.ViewSwaps
		sizes += ss.Size
	}
	if st.WAL.Appends != appends || st.ViewSwaps != swaps {
		t.Fatalf("aggregate mismatch: %+v", st)
	}
	if sizes != 4 {
		t.Fatalf("per-shard sizes sum to %d, want 4", sizes)
	}
	if st.WAL.Appends < 4 {
		t.Fatalf("WAL appends %d, want at least one per upsert", st.WAL.Appends)
	}
	if st.Checkpoints.Checkpoints != 2 {
		t.Fatalf("aggregate checkpoints %d, want one per shard", st.Checkpoints.Checkpoints)
	}
}

// TestShardedRoutingPrunes verifies the router consults only the shards
// whose Hilbert range can matter: a query deep inside one quadrant must
// not touch the other shards' trees (observed through per-shard I/O
// counters after a cold start).
func TestShardedRoutingPrunes(t *testing.T) {
	db, err := Open(Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	day := TimeInterval{Start: 0, End: 1440}
	for i, q := range quadrant {
		uid := UserID(i + 1)
		if err := db.DefineRelation(uid, 99, "w"); err != nil {
			t.Fatal(err)
		}
		if err := db.Grant(uid, "w", Region{MaxX: 1000, MaxY: 1000}, day); err != nil {
			t.Fatal(err)
		}
		if err := db.Upsert(Object{UID: uid, X: q[0], Y: q[1], T: 0}); err != nil {
			t.Fatal(err)
		}
	}
	// A tight window around quadrant 0's point, at the update time (zero
	// gap, so the only enlargement is the shard's own slack = 0·speed).
	r := Region{MinX: 240, MinY: 240, MaxX: 260, MaxY: 260}
	idxs := db.routeRegion(r, 0, db.shardSlack)
	if len(idxs) != 1 {
		t.Fatalf("routeRegion(%+v) = %v, want exactly the owning shard", r, idxs)
	}
	res, err := db.RangeQuery(99, r, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].UID != 1 {
		t.Fatalf("pruned query returned %v", res)
	}
	// The kNN expansion order must start at the shard owning the query
	// point's quadrant.
	order := db.knnOrder(250, 250, 0, db.shardSlack)
	if order[0].idx != idxs[0] {
		t.Fatalf("knnOrder starts at shard %d, want %d", order[0].idx, idxs[0])
	}
	if order[0].lb != 0 {
		t.Fatalf("containing shard's bound = %g, want 0", order[0].lb)
	}

	// With motion slack (query time far from update time) the same window
	// may legitimately route to more shards — never fewer.
	wide := db.routeRegion(r, 60, db.shardSlack)
	if len(wide) < len(idxs) {
		t.Fatalf("slack shrank the route: %v -> %v", idxs, wide)
	}
}

// TestShardedRangesSpanSpace: the shard ranges partition the curve
// exactly; every grid position maps to exactly one shard.
func TestShardedRangesSpanSpace(t *testing.T) {
	db, err := Open(Options{Shards: 5}) // deliberately not a power of two
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if got := db.Shards(); got != 5 {
		t.Fatalf("Shards() = %d", got)
	}
	total := zcurve.Interval{Lo: 0, Hi: db.grid.MaxValue()}
	var covered uint64
	for _, sm := range db.metas {
		covered += sm.route.Len()
	}
	if covered != total.Len() {
		t.Fatalf("routes cover %d of %d values", covered, total.Len())
	}
	for x := 25.0; x < 1000; x += 111 {
		for y := 25.0; y < 1000; y += 97 {
			i := db.shardOf(x, y)
			if !db.metas[i].route.Contains(db.grid.HilbertValue(x, y)) {
				t.Fatalf("shardOf(%g,%g)=%d does not own the position's value", x, y, i)
			}
		}
	}
}

func TestShardedClosedErrors(t *testing.T) {
	db, err := Open(Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if err := db.Upsert(Object{UID: 1, X: 1, Y: 1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("upsert on closed: %v", err)
	}
	if _, err := db.RangeQuery(1, Region{MaxX: 10, MaxY: 10}, 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("query on closed: %v", err)
	}
	if err := db.Apply(db.NewBatch()); !errors.Is(err, ErrClosed) {
		t.Fatalf("apply on closed: %v", err)
	}
	if _, err := db.Snapshot(); !errors.Is(err, ErrClosed) {
		t.Fatalf("snapshot on closed: %v", err)
	}
}
