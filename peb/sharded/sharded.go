// Package sharded scales the PEB-tree engine horizontally: a sharded.DB
// partitions the service space into N shards by Hilbert-curve value range
// and runs one fully independent peb.DB per shard — N write locks, N
// write-ahead logs, N checkpoint pipelines where the single-tree engine
// has one of each. Commits to different shards proceed in parallel end to
// end; the router adds only a shared read lock and a map update.
//
// On top of the partition the router implements:
//
//   - scatter-gather RangeQuery: only the shards whose curve range
//     intersects the (motion-enlarged) query region are consulted, and
//     their results are merged;
//   - distributed NearestNeighbors: shards are visited best-first by their
//     minimum possible distance to the query point, and the search stops
//     as soon as the next shard cannot beat the current k-th candidate;
//   - cross-shard atomic Apply: a batch is split by owning shard and
//     committed through a prepare/commit protocol over the per-shard
//     write-ahead logs (peb.DB.PrepareApply), with the decision point in
//     the router's own log — all-or-nothing even across a crash;
//   - consistent Snapshot: one pinned peb.Snapshot per shard, taken under
//     a brief global barrier, so the set is a single consistent cut;
//   - per-shard durability: each shard owns a directory with its page
//     file, checkpoint side files, and log; recovery opens the shards in
//     parallel and reconciles the user→shard routing map.
//
// Placement follows each user's latest reported position: an update that
// moves a user across a shard boundary re-homes them (insert into the new
// shard, then delete from the old — a crash between the two is healed at
// the next open by keeping the newer state). Policies and relations are
// broadcast to every shard, so any shard can evaluate the privacy
// predicate for its own objects; this matches the paper's premise that
// policies change rarely while positions change constantly.
//
// Concurrency: all methods are safe for concurrent use. Routed operations
// (Upsert, Remove, queries) share a read lock and run concurrently;
// cross-shard operations (Apply with multiple owners, policy changes,
// EncodePolicies, Snapshot) take the write side and act as a brief global
// barrier. Concurrent updates to the same user from different goroutines
// have no defined order (issue each user's updates from one goroutine, as
// a location service naturally does).
package sharded

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/zcurve"
	"repro/peb"
)

// Re-exported domain types, so callers need only this package (they are
// identical to the peb types).
type (
	// UserID identifies a service user.
	UserID = peb.UserID
	// Object is a user's latest movement update.
	Object = peb.Object
	// Region is an axis-aligned rectangle.
	Region = peb.Region
	// TimeInterval is a daily time window.
	TimeInterval = peb.TimeInterval
	// Role names a relationship.
	Role = peb.Role
	// Neighbor is one nearest-neighbor result.
	Neighbor = peb.Neighbor
)

// ErrClosed is returned by every method called after Close.
var ErrClosed = peb.ErrClosed

// DefaultShards is the shard count used when Options.Shards is zero.
const DefaultShards = 4

// Options configures a sharded DB. The zero value runs DefaultShards
// memory-backed shards over the paper's default space.
type Options struct {
	// Shards is the number of space partitions to CREATE with (default
	// DefaultShards). The live topology is dynamic — Split and Merge (and
	// the AutoReshard maintainer) change it online and persist it in the
	// manifest — so on reopen the manifest's topology is adopted and this
	// field is ignored; only a genuinely corrupt or incompatible manifest
	// is an error.
	Shards int
	// Dir, when non-empty, is the root directory: each shard keeps its
	// page file, checkpoint side files, and write-ahead log under
	// <Dir>/shard-NNN/, next to the router's manifest and transaction
	// decision log. Empty means memory-backed shards (no durability).
	Dir string
	// DB is the per-shard engine configuration — space, durability level,
	// buffer size, auto-checkpointing, filesystem — applied identically to
	// every shard. Path must be empty (it is derived per shard) and
	// TxnResolve must be nil (the router installs its own resolver).
	DB peb.Options
	// ReplicasPerShard, when positive, attaches that many peb.Replica
	// followers to every shard and serves RangeQuery and NearestNeighbors
	// from them round-robin (see replica.go for the read-your-writes
	// freshness protocol). Requires durability: followers tail the
	// per-shard write-ahead logs.
	ReplicasPerShard int
	// StalenessBound relaxes follower freshness: a follower may serve a
	// read while lagging at most this many commits behind the last write
	// the router sent to that shard. Zero (the default) demands full
	// read-your-writes freshness; a follower that cannot reach the bound
	// even after a synchronous catch-up is skipped in favor of the
	// primary. Meaningful only with ReplicasPerShard > 0.
	StalenessBound uint64
	// LoadRateHalfLife sets the horizon of the per-shard EWMA commit and
	// query rates in ShardStats (and of the AutoReshard trigger): a burst's
	// contribution to the rate halves every such interval. Default 10s.
	LoadRateHalfLife time.Duration
	// AutoReshard, when its Interval is positive, runs a background
	// maintainer that splits hot shards and merges cold adjacent ones by
	// the observed EWMA commit rates (see AutoReshardPolicy). Incompatible
	// with ReplicasPerShard (splits are not yet coordinated with follower
	// pools).
	AutoReshard AutoReshardPolicy
}

// DB is a space-partitioned moving-object database over independent
// peb.DB shards.
type DB struct {
	opts   Options
	fs     store.VFS
	grid   zcurve.Grid
	shards []*peb.DB

	// Topology (topology.go). metas is parallel to shards (one entry per
	// live engine, in slot order); routes is the sorted write-routing
	// table and covers the per-slot query-pruning intervals, both derived
	// from metas by rebuildRoutes; epoch counts topology versions (bumped
	// on every route change); nextID allocates shard ids (never reused);
	// pending is the in-flight split or merge, if any. All guarded by smu:
	// readers hold the read side, topology changes the write side.
	metas  []shardMeta
	routes []routeEntry
	covers []zcurve.Interval
	epoch  uint64
	nextID int
	// pending, splits, merges are additionally guarded for Stats readers
	// holding only the read barrier — splits/merges are plain counters
	// written under the write barrier, read via atomic loads.
	pending *pendingOp
	splits  atomic.Uint64
	merges  atomic.Uint64

	// now is the load meters' clock, injectable in tests.
	now func() time.Time

	// Reshard maintainer lifecycle (reshard.go); nil without AutoReshard.
	reshardStop chan struct{}
	reshardDone chan struct{}
	reshardOnce sync.Once

	// cqMu guards cqs, the attached CQ routers (cq.go). Topology changes
	// notify them under the write barrier so subscription fan-out follows
	// the shard set without ever missing a commit.
	cqMu sync.Mutex
	cqs  map[*CQ]struct{}

	// smu is the router barrier: routed single-shard operations and
	// queries hold the read side (and so run concurrently, each
	// serializing only inside its own shard), while cross-shard atomic
	// operations — multi-shard Apply, policy broadcasts, EncodePolicies,
	// Snapshot, Close — hold the write side.
	smu    sync.RWMutex
	closed bool

	// ownMu guards owner, the routing map from user to the shard holding
	// their index entry. It is a leaf mutex: never held while calling into
	// a shard.
	ownMu sync.Mutex
	owner map[UserID]int

	// Cross-shard transaction state: txnLog is the router's decision log
	// (non-nil only with durability) — an appended id IS the commit point
	// of that transaction; nextTxn allocates ids above every committed or
	// observed id so a recycled id can never match a stale prepared record.
	txnMu   sync.Mutex
	txnLog  *store.WAL
	nextTxn uint64
	// txnDecisions counts verdicts appended since the last compaction —
	// zero means the log already holds nothing but its watermark.
	txnDecisions uint64

	// Follower-read state (replica.go). replicas holds each shard's
	// follower pool (nil without ReplicasPerShard); rr is the per-shard
	// round-robin cursor; written is the per-shard WAL sequence of the
	// last commit this router routed there — the horizon a follower must
	// reach to serve reads.
	replicas [][]*peb.Replica
	rr       []atomic.Uint64
	written  []atomic.Uint64
	// stalled tracks, per shard, whether the last follower read fell back
	// to the primary — so stall and recovery are logged as transitions,
	// one event each, not once per read.
	stalled []atomic.Bool

	followerReads    atomic.Uint64
	primaryFallbacks atomic.Uint64

	// Router observability (observe.go): topology-scoped metrics and the
	// maintainer event log. Per-shard series live on each engine's own
	// registry (const label shard="NNN").
	obsReg *obs.Registry
	events *obs.EventLog
}

func (o Options) validate() error {
	if o.Shards < 0 {
		return fmt.Errorf("%w: Shards %d < 0", peb.ErrBadOptions, o.Shards)
	}
	if o.DB.Path != "" {
		return fmt.Errorf("%w: per-shard paths are derived from Dir; Options.DB.Path must be empty", peb.ErrBadOptions)
	}
	if o.DB.TxnResolve != nil {
		return fmt.Errorf("%w: Options.DB.TxnResolve is owned by the router", peb.ErrBadOptions)
	}
	if o.DB.Durability != peb.DurabilityNone && o.Dir == "" {
		return fmt.Errorf("%w: Durability requires Dir", peb.ErrBadOptions)
	}
	if o.ReplicasPerShard < 0 {
		return fmt.Errorf("%w: ReplicasPerShard %d < 0", peb.ErrBadOptions, o.ReplicasPerShard)
	}
	if o.ReplicasPerShard > 0 && o.DB.Durability == peb.DurabilityNone {
		return fmt.Errorf("%w: ReplicasPerShard requires Durability (followers tail the per-shard logs)", peb.ErrBadOptions)
	}
	if o.LoadRateHalfLife < 0 {
		return fmt.Errorf("%w: LoadRateHalfLife %v < 0", peb.ErrBadOptions, o.LoadRateHalfLife)
	}
	if err := o.AutoReshard.validate(); err != nil {
		return err
	}
	if o.AutoReshard.Interval > 0 && o.ReplicasPerShard > 0 {
		return fmt.Errorf("%w: AutoReshard is not coordinated with ReplicasPerShard follower pools yet", peb.ErrBadOptions)
	}
	return nil
}

// shardDir returns shard i's directory under the root.
func shardDir(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%03d", i))
}

// Open creates a sharded DB, or — when Dir holds one — recovers it: the
// manifest's topology is adopted (Options.Shards counts only at
// creation), every listed shard recovers independently (checkpoint plus
// log replay, with cross-shard transactions resolved against the router's
// decision log), the routing map is rebuilt from the shards' contents —
// healing any duplicate a crash mid-re-homing left behind — and an
// in-flight split or merge the manifest records is rolled forward to
// completion before the first operation is served.
func Open(opts Options) (*DB, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if opts.Shards == 0 {
		opts.Shards = DefaultShards
	}
	fsys := opts.DB.FS
	if fsys == nil {
		fsys = store.OSFS{}
	}

	// Real-filesystem deployments need the root to exist before the
	// manifest is written; virtual filesystems (CrashFS in tests) treat
	// paths as opaque names.
	_, isOS := fsys.(store.OSFS)
	if opts.Dir != "" && isOS {
		if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("sharded: create root dir: %w", err)
		}
	}
	ts, err := loadTopology(fsys, opts)
	if err != nil {
		return nil, err
	}
	n := len(ts.metas)
	if opts.Dir != "" && isOS {
		for _, sm := range ts.metas {
			if err := os.MkdirAll(shardDir(opts.Dir, sm.id), 0o755); err != nil {
				return nil, fmt.Errorf("sharded: create shard dir: %w", err)
			}
		}
	}

	// The decision log must be read before the shards open: each shard's
	// recovery resolves markerless prepared records against it.
	var (
		txnLog    *store.WAL
		committed map[uint64]bool
		maxTxn    uint64
	)
	if opts.DB.Durability != peb.DurabilityNone {
		var err error
		txnLog, committed, maxTxn, err = openDecisionLog(fsys, filepath.Join(opts.Dir, "txn.log"))
		if err != nil {
			return nil, err
		}
	}

	// Open the shards in parallel: recovery cost is per shard, so a
	// multi-core restart recovers N shards in the time of the largest.
	shards := make([]*peb.DB, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		po := opts.DB
		po.FS = fsys
		if opts.Dir != "" {
			po.Path = filepath.Join(shardDir(opts.Dir, ts.metas[i].id), "peb.idx")
		}
		po.TxnResolve = func(id uint64) bool { return committed[id] }
		po.MetricsLabel = shardLabel(ts.metas[i].id)
		wg.Add(1)
		go func(i int, po peb.Options) {
			defer wg.Done()
			shards[i], errs[i] = peb.Open(po)
		}(i, po)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			for _, s := range shards {
				if s != nil {
					s.Close()
				}
			}
			if txnLog != nil {
				txnLog.Close()
			}
			return nil, fmt.Errorf("sharded: open shard %d: %w", i, err)
		}
	}

	// Recovery is over: the resolver closures each shard retains are never
	// consulted again, so release the committed-id set (it is rebuilt from
	// the log on the next open) rather than pin one entry per transaction
	// ever committed for the DB's lifetime.
	committed = nil

	grid := zcurve.Grid{Side: shards[0].Bounds().MaxX, Order: shards[0].GridOrder()}
	db := &DB{
		opts:    opts,
		fs:      fsys,
		grid:    grid,
		shards:  shards,
		metas:   ts.metas,
		epoch:   ts.epoch,
		nextID:  ts.nextID,
		pending: ts.pending,
		now:     time.Now,
		cqs:     make(map[*CQ]struct{}),
		owner:   make(map[UserID]int),
		txnLog:  txnLog,
	}
	db.initObs()
	db.rebuildRoutes()
	if err := db.reconcile(); err != nil {
		db.Close()
		return nil, err
	}
	for _, s := range shards {
		if id := s.MaxTxnID(); id > maxTxn {
			maxTxn = id
		}
	}
	db.nextTxn = maxTxn + 1

	// A pending split or merge in the manifest already happened — its
	// route flip was durably committed — so recovery completes the
	// migration before the database serves anything.
	if db.pending != nil {
		if err := db.completePendingLocked(); err != nil {
			db.Close()
			return nil, fmt.Errorf("sharded: complete in-flight %s: %w", db.pending.Kind, err)
		}
	}

	if opts.ReplicasPerShard > 0 {
		if err := db.attachReplicas(opts.ReplicasPerShard); err != nil {
			db.Close()
			return nil, err
		}
	}
	db.startMaintainer()
	return db, nil
}

// reconcile rebuilds the user→shard map from the shards' contents. A crash
// between the two halves of a re-homing update (insert into the new shard,
// remove from the old) can leave one user in two shards; the newer state
// (larger update time; ties broken toward the shard owning the stored
// position, then the lower index) wins and the stale entry is removed.
func (db *DB) reconcile() error {
	for i, s := range db.shards {
		objs, err := s.Objects()
		if err != nil {
			return fmt.Errorf("sharded: enumerate shard %d: %w", i, err)
		}
		for _, o := range objs {
			prev, dup := db.owner[o.UID]
			if !dup {
				db.owner[o.UID] = i
				continue
			}
			po, ok, err := db.shards[prev].Lookup(o.UID)
			if err != nil {
				return err
			}
			keepNew := !ok || o.T > po.T ||
				(o.T == po.T && db.shardOf(o.X, o.Y) == i)
			if keepNew {
				if ok {
					if err := db.shards[prev].Remove(o.UID); err != nil {
						return fmt.Errorf("sharded: heal duplicate user %d: %w", o.UID, err)
					}
				}
				db.owner[o.UID] = i
			} else {
				if err := db.shards[i].Remove(o.UID); err != nil {
					return fmt.Errorf("sharded: heal duplicate user %d: %w", o.UID, err)
				}
			}
		}
	}
	return nil
}

// shardOf maps a position to the slot of the shard whose route owns its
// Hilbert value — where a write of that position goes right now.
func (db *DB) shardOf(x, y float64) int {
	v := db.grid.HilbertValue(x, y)
	i := sort.Search(len(db.routes), func(i int) bool { return db.routes[i].iv.Hi >= v })
	if i >= len(db.routes) {
		i = len(db.routes) - 1
	}
	return db.routes[i].slot
}

// Shards returns the current number of shards (splits and merges change
// it online).
func (db *DB) Shards() int {
	db.smu.RLock()
	defer db.smu.RUnlock()
	return len(db.shards)
}

// Epoch returns the topology version: it advances on every routing
// change (twice per completed split or merge — once for the route flip,
// once when the migration finishes and covers contract).
func (db *DB) Epoch() uint64 {
	db.smu.RLock()
	defer db.smu.RUnlock()
	return db.epoch
}

// Close closes every shard and the router's decision log. Close drains
// cross-shard operations (it takes the barrier) and is idempotent.
func (db *DB) Close() error {
	// The maintainer takes the barrier itself; stop it before acquiring.
	db.stopMaintainer()
	db.smu.Lock()
	defer db.smu.Unlock()
	if db.closed {
		return nil
	}
	db.closed = true
	// Followers first: they tail the shard logs that are about to close.
	firstErr := db.closeReplicas()
	if db.txnLog != nil {
		if err := db.txnLog.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		db.txnLog = nil
	}
	for i, s := range db.shards {
		if err := s.Close(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("sharded: close shard %d: %w", i, err)
		}
	}
	return firstErr
}

// Upsert stores or replaces a user's movement update in the shard owning
// the new position. A user whose update crosses a shard boundary is
// re-homed: inserted into the new shard first, then removed from the old,
// so concurrent queries see the user throughout (briefly possibly twice;
// query merging keeps the newer state).
func (db *DB) Upsert(o Object) error {
	db.smu.RLock()
	defer db.smu.RUnlock()
	if db.closed {
		return ErrClosed
	}
	target := db.shardOf(o.X, o.Y)
	if err := db.shards[target].Upsert(o); err != nil {
		return err
	}
	db.noteWrite(target)
	db.ownMu.Lock()
	prev, had := db.owner[o.UID]
	db.owner[o.UID] = target
	db.ownMu.Unlock()
	if had && prev != target {
		if err := db.shards[prev].Remove(o.UID); err != nil {
			return fmt.Errorf("sharded: re-home user %d out of shard %d: %w", o.UID, prev, err)
		}
		db.noteWrite(prev)
	}
	return nil
}

// Remove deletes a user's index entry (their policies remain, in every
// shard). Removing a user with no index entry is an error, matching the
// single-tree engine.
func (db *DB) Remove(uid UserID) error {
	db.smu.RLock()
	defer db.smu.RUnlock()
	if db.closed {
		return ErrClosed
	}
	db.ownMu.Lock()
	idx, ok := db.owner[uid]
	db.ownMu.Unlock()
	if !ok {
		return fmt.Errorf("sharded: remove: user %d is not indexed", uid)
	}
	if err := db.shards[idx].Remove(uid); err != nil {
		return err
	}
	db.noteWrite(idx)
	db.ownMu.Lock()
	delete(db.owner, uid)
	db.ownMu.Unlock()
	return nil
}

// DefineRelation records a role relation. Policy state is broadcast to
// every shard (any shard must be able to evaluate the privacy predicate
// for the objects it holds) through the atomic cross-shard batch path, so
// a failure on any shard rolls the others back — the shards never
// disagree on the predicate.
func (db *DB) DefineRelation(owner, peer UserID, role Role) error {
	b := db.NewBatch()
	b.DefineRelation(owner, peer, role)
	return db.Apply(b)
}

// Grant adds a location-privacy policy, broadcast to every shard
// atomically (see DefineRelation).
func (db *DB) Grant(owner UserID, role Role, locr Region, tint TimeInterval) error {
	if !locr.Valid() {
		return &peb.InvalidRegionError{Region: locr}
	}
	b := db.NewBatch()
	b.Grant(owner, role, locr, tint)
	return db.Apply(b)
}

// EncodePolicies runs the offline policy-encoding phase once for the
// whole deployment: the sequence-value assignment is computed a single
// time — policies are broadcast, so every shard would derive the same one
// — over the union of every shard's users, then broadcast, and each shard
// rebuilds its own index under the shared result in parallel. Shared
// values also keep keys consistent across re-homing: a user moves shards
// with the same sequence value. Like the single-tree form, queries work
// without it but cluster better after it.
func (db *DB) EncodePolicies() error {
	db.smu.Lock()
	defer db.smu.Unlock()
	if db.closed {
		return ErrClosed
	}
	// Shard 0 knows every policy-bearing user (broadcast), but users who
	// only ever reported positions live in their owning shard alone; the
	// routing map is exactly that set, so folding it in makes the
	// assignment cover every indexed user on every shard.
	db.ownMu.Lock()
	extra := make([]UserID, 0, len(db.owner))
	for u := range db.owner {
		extra = append(extra, u)
	}
	db.ownMu.Unlock()
	enc, err := db.shards[0].ComputeEncoding(extra)
	if err != nil {
		return fmt.Errorf("sharded: compute encoding: %w", err)
	}
	errs := make([]error, len(db.shards))
	var wg sync.WaitGroup
	for i, s := range db.shards {
		wg.Add(1)
		go func(i int, s *peb.DB) {
			defer wg.Done()
			errs[i] = s.InstallEncoding(enc)
		}(i, s)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("sharded: install encoding on shard %d: %w", i, err)
		}
	}
	for i := range db.shards {
		db.noteWrite(i)
	}
	return nil
}

// Checkpoint runs every shard's checkpoint pipeline concurrently. Each
// pipeline stalls only its own shard's commits for its cut and publish
// moments; the other shards keep serving throughout — the per-shard
// version of the engine's non-blocking checkpoint. A fully successful
// pass also compacts the router's transaction decision log down to a
// single watermark record (every verdict it held has just become
// unreachable).
func (db *DB) Checkpoint() error {
	db.smu.RLock()
	defer db.smu.RUnlock()
	if db.closed {
		return ErrClosed
	}
	errs := make([]error, len(db.shards))
	var wg sync.WaitGroup
	for i, s := range db.shards {
		wg.Add(1)
		go func(i int, s *peb.DB) {
			defer wg.Done()
			errs[i] = s.Checkpoint()
		}(i, s)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("sharded: checkpoint shard %d: %w", i, err)
		}
	}
	// Every shard's log truncation has passed every decided transaction,
	// and the barrier we hold keeps new ones out: the decision log's
	// records are all unreachable now, so fold it down to its watermark.
	return db.compactDecisionLog()
}

// Lookup returns a user's stored movement state.
func (db *DB) Lookup(uid UserID) (Object, bool, error) {
	db.smu.RLock()
	defer db.smu.RUnlock()
	if db.closed {
		return Object{}, false, ErrClosed
	}
	db.ownMu.Lock()
	idx, ok := db.owner[uid]
	db.ownMu.Unlock()
	if !ok {
		return Object{}, false, nil
	}
	return db.shards[idx].Lookup(uid)
}

// Allows evaluates the raw policy predicate (policies are identical on
// every shard).
func (db *DB) Allows(owner, viewer UserID, x, y, t float64) bool {
	db.smu.RLock()
	defer db.smu.RUnlock()
	if db.closed {
		return false
	}
	return db.shards[0].Allows(owner, viewer, x, y, t)
}

// Size returns the number of indexed users.
func (db *DB) Size() int {
	db.smu.RLock()
	defer db.smu.RUnlock()
	if db.closed {
		return 0
	}
	db.ownMu.Lock()
	defer db.ownMu.Unlock()
	return len(db.owner)
}

// RangeQuery answers the privacy-aware range query by scatter-gather:
// shards whose Hilbert range cannot intersect the query region — enlarged
// by each shard's own motion slack, mirroring the enlargement the shard
// would apply internally — are pruned, the rest are queried concurrently,
// and the results are merged (sorted by user id; the single-tree engine
// returns scan order instead).
func (db *DB) RangeQuery(issuer UserID, r Region, t float64) ([]Object, error) {
	db.smu.RLock()
	defer db.smu.RUnlock()
	if db.closed {
		return nil, ErrClosed
	}
	if !r.Valid() {
		return nil, &peb.InvalidRegionError{Region: r}
	}
	return gatherRange(db.routeRegion(r, t, db.shardSlack), issuer, r, t,
		db.reader)
}

// NearestNeighbors answers the privacy-aware k-nearest-neighbor query by
// best-first shard expansion: shards are visited in order of the minimum
// distance any of their objects could have to the query point (their
// region's distance minus their motion slack), and the expansion stops
// once the next shard's bound exceeds the current k-th candidate — that
// shard, and every one after it, cannot contribute.
func (db *DB) NearestNeighbors(issuer UserID, x, y float64, k int, t float64) ([]Neighbor, error) {
	db.smu.RLock()
	defer db.smu.RUnlock()
	if db.closed {
		return nil, ErrClosed
	}
	return gatherKNN(db.knnOrder(x, y, t, db.shardSlack), issuer, x, y, k, t,
		db.reader)
}

// shardSlack is DB.MotionSlack for the live shards (the routing functions
// also run against pinned snapshots).
func (db *DB) shardSlack(i int, t float64) float64 {
	return db.shards[i].MotionSlack(t)
}

// routeRegion returns the slots of the shards whose COVER interval can
// hold an object relevant to a range query over r at time t — pruning by
// cover, not route, so a query during a migration still consults both
// halves of a splitting range. Each shard's region is effectively
// enlarged by its own motion slack: an object is stored under the
// position of its last update, so it can qualify for r while being
// stored up to slack away.
func (db *DB) routeRegion(r Region, t float64, slack func(int, float64) float64) []int {
	return routeRegionOver(db.grid, db.covers, r, t, slack)
}

func routeRegionOver(grid zcurve.Grid, covers []zcurve.Interval, r Region, t float64, slack func(int, float64) float64) []int {
	var out []int
	for i := range covers {
		ew := enlarge(r, slack(i, t))
		rect, ok := grid.RectOf(ew.MinX, ew.MinY, ew.MaxX, ew.MaxY)
		if !ok {
			continue // the enlarged window misses the space entirely
		}
		if zcurve.HilbertRangeIntersectsRect(rect, covers[i], grid.Order) {
			out = append(out, i)
		}
	}
	return out
}

// knnOrder returns every shard with its candidate-distance lower bound
// (against its cover interval), sorted ascending — the best-first
// expansion order.
func (db *DB) knnOrder(x, y, t float64, slack func(int, float64) float64) []knnShard {
	return knnOrderOver(db.grid, db.covers, x, y, t, slack)
}

func knnOrderOver(grid zcurve.Grid, covers []zcurve.Interval, x, y, t float64, slack func(int, float64) float64) []knnShard {
	out := make([]knnShard, 0, len(covers))
	for i := range covers {
		lb := grid.HilbertMinDist(x, y, covers[i]) - slack(i, t)
		if lb < 0 {
			lb = 0
		}
		out = append(out, knnShard{idx: i, lb: lb})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].lb != out[b].lb {
			return out[a].lb < out[b].lb
		}
		return out[a].idx < out[b].idx
	})
	return out
}

// enlarge grows a region by d on every side.
func enlarge(r Region, d float64) Region {
	return Region{MinX: r.MinX - d, MinY: r.MinY - d, MaxX: r.MaxX + d, MaxY: r.MaxY + d}
}

// querier is the query surface shared by live shards and their pinned
// snapshots, letting DB and Snapshot reuse one gather implementation.
type querier interface {
	RangeQuery(issuer UserID, r Region, t float64) ([]Object, error)
	NearestNeighbors(issuer UserID, x, y float64, k int, t float64) ([]Neighbor, error)
}

// gatherRange fans a range query out to the routed shards concurrently and
// merges the results: duplicates (a user caught mid-re-homing) keep the
// newer state, and the merged set is sorted by user id for determinism.
func gatherRange(idxs []int, issuer UserID, r Region, t float64, shard func(int) querier) ([]Object, error) {
	results := make([][]Object, len(idxs))
	errs := make([]error, len(idxs))
	var wg sync.WaitGroup
	for j, i := range idxs {
		wg.Add(1)
		go func(j, i int) {
			defer wg.Done()
			results[j], errs[j] = shard(i).RangeQuery(issuer, r, t)
		}(j, i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	merged := make(map[UserID]Object)
	for _, res := range results {
		for _, o := range res {
			if prev, ok := merged[o.UID]; !ok || o.T > prev.T {
				merged[o.UID] = o
			}
		}
	}
	if len(merged) == 0 {
		return nil, nil // match the single-tree engine's empty result
	}
	out := make([]Object, 0, len(merged))
	for _, o := range merged {
		out = append(out, o)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].UID < out[b].UID })
	return out, nil
}

// knnShard is one shard in best-first expansion order: no object of shard
// idx can be closer to the query point than lb.
type knnShard struct {
	idx int
	lb  float64
}

// gatherKNN merges per-shard k-nearest results under best-first expansion
// with a global bound: once k qualified candidates are in hand, a shard
// whose lower bound exceeds the k-th distance — and every later shard,
// since the order is ascending — is skipped. Shards with equal bounds are
// still visited (an equal-distance candidate with a smaller id would win
// the tie-break).
func gatherKNN(order []knnShard, issuer UserID, x, y float64, k int, t float64, shard func(int) querier) ([]Neighbor, error) {
	if k <= 0 {
		return nil, nil
	}
	best := make(map[UserID]Neighbor)
	kth := func() float64 {
		ds := make([]float64, 0, len(best))
		for _, nb := range best {
			ds = append(ds, nb.Dist)
		}
		sort.Float64s(ds)
		return ds[k-1]
	}
	for _, sh := range order {
		if len(best) >= k && sh.lb > kth() {
			break
		}
		res, err := shard(sh.idx).NearestNeighbors(issuer, x, y, k, t)
		if err != nil {
			return nil, err
		}
		for _, nb := range res {
			if prev, ok := best[nb.Object.UID]; !ok || nb.Object.T > prev.Object.T {
				best[nb.Object.UID] = nb
			}
		}
	}
	if len(best) == 0 {
		return nil, nil // match the single-tree engine's empty result
	}
	out := make([]Neighbor, 0, len(best))
	for _, nb := range best {
		out = append(out, nb)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Dist != out[b].Dist {
			return out[a].Dist < out[b].Dist
		}
		return out[a].Object.UID < out[b].Object.UID
	})
	if len(out) > k {
		out = out[:k]
	}
	return out, nil
}
