// Package sharded scales the PEB-tree engine horizontally: a sharded.DB
// partitions the service space into N shards by Hilbert-curve value range
// and runs one fully independent peb.DB per shard — N write locks, N
// write-ahead logs, N checkpoint pipelines where the single-tree engine
// has one of each. Commits to different shards proceed in parallel end to
// end; the router adds only a shared read lock and a map update.
//
// On top of the partition the router implements:
//
//   - scatter-gather RangeQuery: only the shards whose curve range
//     intersects the (motion-enlarged) query region are consulted, and
//     their results are merged;
//   - distributed NearestNeighbors: shards are visited best-first by their
//     minimum possible distance to the query point, and the search stops
//     as soon as the next shard cannot beat the current k-th candidate;
//   - cross-shard atomic Apply: a batch is split by owning shard and
//     committed through a prepare/commit protocol over the per-shard
//     write-ahead logs (peb.DB.PrepareApply), with the decision point in
//     the router's own log — all-or-nothing even across a crash;
//   - consistent Snapshot: one pinned peb.Snapshot per shard, taken under
//     a brief global barrier, so the set is a single consistent cut;
//   - per-shard durability: each shard owns a directory with its page
//     file, checkpoint side files, and log; recovery opens the shards in
//     parallel and reconciles the user→shard routing map.
//
// Placement follows each user's latest reported position: an update that
// moves a user across a shard boundary re-homes them (insert into the new
// shard, then delete from the old — a crash between the two is healed at
// the next open by keeping the newer state). Policies and relations are
// broadcast to every shard, so any shard can evaluate the privacy
// predicate for its own objects; this matches the paper's premise that
// policies change rarely while positions change constantly.
//
// Concurrency: all methods are safe for concurrent use. Routed operations
// (Upsert, Remove, queries) share a read lock and run concurrently;
// cross-shard operations (Apply with multiple owners, policy changes,
// EncodePolicies, Snapshot) take the write side and act as a brief global
// barrier. Concurrent updates to the same user from different goroutines
// have no defined order (issue each user's updates from one goroutine, as
// a location service naturally does).
package sharded

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/store"
	"repro/internal/zcurve"
	"repro/peb"
)

// Re-exported domain types, so callers need only this package (they are
// identical to the peb types).
type (
	// UserID identifies a service user.
	UserID = peb.UserID
	// Object is a user's latest movement update.
	Object = peb.Object
	// Region is an axis-aligned rectangle.
	Region = peb.Region
	// TimeInterval is a daily time window.
	TimeInterval = peb.TimeInterval
	// Role names a relationship.
	Role = peb.Role
	// Neighbor is one nearest-neighbor result.
	Neighbor = peb.Neighbor
)

// ErrClosed is returned by every method called after Close.
var ErrClosed = peb.ErrClosed

// DefaultShards is the shard count used when Options.Shards is zero.
const DefaultShards = 4

// Options configures a sharded DB. The zero value runs DefaultShards
// memory-backed shards over the paper's default space.
type Options struct {
	// Shards is the number of space partitions (default DefaultShards).
	// The count is fixed at creation and persisted in the manifest;
	// reopening an existing directory with a different count is refused
	// (resharding is not supported).
	Shards int
	// Dir, when non-empty, is the root directory: each shard keeps its
	// page file, checkpoint side files, and write-ahead log under
	// <Dir>/shard-NNN/, next to the router's manifest and transaction
	// decision log. Empty means memory-backed shards (no durability).
	Dir string
	// DB is the per-shard engine configuration — space, durability level,
	// buffer size, auto-checkpointing, filesystem — applied identically to
	// every shard. Path must be empty (it is derived per shard) and
	// TxnResolve must be nil (the router installs its own resolver).
	DB peb.Options
	// ReplicasPerShard, when positive, attaches that many peb.Replica
	// followers to every shard and serves RangeQuery and NearestNeighbors
	// from them round-robin (see replica.go for the read-your-writes
	// freshness protocol). Requires durability: followers tail the
	// per-shard write-ahead logs.
	ReplicasPerShard int
	// StalenessBound relaxes follower freshness: a follower may serve a
	// read while lagging at most this many commits behind the last write
	// the router sent to that shard. Zero (the default) demands full
	// read-your-writes freshness; a follower that cannot reach the bound
	// even after a synchronous catch-up is skipped in favor of the
	// primary. Meaningful only with ReplicasPerShard > 0.
	StalenessBound uint64
}

// DB is a space-partitioned moving-object database over independent
// peb.DB shards.
type DB struct {
	opts   Options
	fs     store.VFS
	grid   zcurve.Grid
	ranges []zcurve.Interval
	shards []*peb.DB

	// smu is the router barrier: routed single-shard operations and
	// queries hold the read side (and so run concurrently, each
	// serializing only inside its own shard), while cross-shard atomic
	// operations — multi-shard Apply, policy broadcasts, EncodePolicies,
	// Snapshot, Close — hold the write side.
	smu    sync.RWMutex
	closed bool

	// ownMu guards owner, the routing map from user to the shard holding
	// their index entry. It is a leaf mutex: never held while calling into
	// a shard.
	ownMu sync.Mutex
	owner map[UserID]int

	// Cross-shard transaction state: txnLog is the router's decision log
	// (non-nil only with durability) — an appended id IS the commit point
	// of that transaction; nextTxn allocates ids above every committed or
	// observed id so a recycled id can never match a stale prepared record.
	txnMu   sync.Mutex
	txnLog  *store.WAL
	nextTxn uint64
	// txnDecisions counts verdicts appended since the last compaction —
	// zero means the log already holds nothing but its watermark.
	txnDecisions uint64

	// Follower-read state (replica.go). replicas holds each shard's
	// follower pool (nil without ReplicasPerShard); rr is the per-shard
	// round-robin cursor; written is the per-shard WAL sequence of the
	// last commit this router routed there — the horizon a follower must
	// reach to serve reads.
	replicas [][]*peb.Replica
	rr       []atomic.Uint64
	written  []atomic.Uint64

	followerReads    atomic.Uint64
	primaryFallbacks atomic.Uint64
}

// manifest is the router's persisted identity: the facts that must match
// across reopens for the on-disk shards to be interpreted correctly.
type manifest struct {
	Version   int
	Shards    int
	SpaceSide float64
	GridOrder int
}

const manifestVersion = 1

func (o Options) validate() error {
	if o.Shards < 0 {
		return fmt.Errorf("%w: Shards %d < 0", peb.ErrBadOptions, o.Shards)
	}
	if o.DB.Path != "" {
		return fmt.Errorf("%w: per-shard paths are derived from Dir; Options.DB.Path must be empty", peb.ErrBadOptions)
	}
	if o.DB.TxnResolve != nil {
		return fmt.Errorf("%w: Options.DB.TxnResolve is owned by the router", peb.ErrBadOptions)
	}
	if o.DB.Durability != peb.DurabilityNone && o.Dir == "" {
		return fmt.Errorf("%w: Durability requires Dir", peb.ErrBadOptions)
	}
	if o.ReplicasPerShard < 0 {
		return fmt.Errorf("%w: ReplicasPerShard %d < 0", peb.ErrBadOptions, o.ReplicasPerShard)
	}
	if o.ReplicasPerShard > 0 && o.DB.Durability == peb.DurabilityNone {
		return fmt.Errorf("%w: ReplicasPerShard requires Durability (followers tail the per-shard logs)", peb.ErrBadOptions)
	}
	return nil
}

// shardDir returns shard i's directory under the root.
func shardDir(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%03d", i))
}

// Open creates a sharded DB, or — when Dir holds one — recovers it: the
// manifest is verified, every shard recovers independently (checkpoint
// plus log replay, with cross-shard transactions resolved against the
// router's decision log), and the routing map is rebuilt from the shards'
// contents, healing any duplicate a crash mid-re-homing left behind.
func Open(opts Options) (*DB, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if opts.Shards == 0 {
		opts.Shards = DefaultShards
	}
	fsys := opts.DB.FS
	if fsys == nil {
		fsys = store.OSFS{}
	}
	n := opts.Shards

	// Real-filesystem deployments need the directories to exist; virtual
	// filesystems (CrashFS in tests) treat paths as opaque names.
	if opts.Dir != "" {
		if _, isOS := fsys.(store.OSFS); isOS {
			for i := 0; i < n; i++ {
				if err := os.MkdirAll(shardDir(opts.Dir, i), 0o755); err != nil {
					return nil, fmt.Errorf("sharded: create shard dir: %w", err)
				}
			}
		}
		if err := checkManifest(fsys, opts); err != nil {
			return nil, err
		}
	}

	// The decision log must be read before the shards open: each shard's
	// recovery resolves markerless prepared records against it.
	var (
		txnLog    *store.WAL
		committed map[uint64]bool
		maxTxn    uint64
	)
	if opts.DB.Durability != peb.DurabilityNone {
		var err error
		txnLog, committed, maxTxn, err = openDecisionLog(fsys, filepath.Join(opts.Dir, "txn.log"))
		if err != nil {
			return nil, err
		}
	}

	// Open the shards in parallel: recovery cost is per shard, so a
	// multi-core restart recovers N shards in the time of the largest.
	shards := make([]*peb.DB, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		po := opts.DB
		po.FS = fsys
		if opts.Dir != "" {
			po.Path = filepath.Join(shardDir(opts.Dir, i), "peb.idx")
		}
		po.TxnResolve = func(id uint64) bool { return committed[id] }
		wg.Add(1)
		go func(i int, po peb.Options) {
			defer wg.Done()
			shards[i], errs[i] = peb.Open(po)
		}(i, po)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			for _, s := range shards {
				if s != nil {
					s.Close()
				}
			}
			if txnLog != nil {
				txnLog.Close()
			}
			return nil, fmt.Errorf("sharded: open shard %d: %w", i, err)
		}
	}

	// Recovery is over: the resolver closures each shard retains are never
	// consulted again, so release the committed-id set (it is rebuilt from
	// the log on the next open) rather than pin one entry per transaction
	// ever committed for the DB's lifetime.
	committed = nil

	grid := zcurve.Grid{Side: shards[0].Bounds().MaxX, Order: shards[0].GridOrder()}
	db := &DB{
		opts:   opts,
		fs:     fsys,
		grid:   grid,
		ranges: zcurve.SplitRange(grid.Order, n),
		shards: shards,
		owner:  make(map[UserID]int),
		txnLog: txnLog,
	}
	if err := db.reconcile(); err != nil {
		db.Close()
		return nil, err
	}
	for _, s := range shards {
		if id := s.MaxTxnID(); id > maxTxn {
			maxTxn = id
		}
	}
	db.nextTxn = maxTxn + 1
	if opts.ReplicasPerShard > 0 {
		if err := db.attachReplicas(opts.ReplicasPerShard); err != nil {
			db.Close()
			return nil, err
		}
	}
	return db, nil
}

// checkManifest verifies an existing manifest against the options, or
// writes a fresh one. The manifest is written before any shard is created
// so a crash can never leave shards whose count the next open guesses.
func checkManifest(fsys store.VFS, opts Options) error {
	path := filepath.Join(opts.Dir, "sharded.json")
	ok, err := fsys.Exists(path)
	if err != nil {
		return fmt.Errorf("sharded: probe manifest: %w", err)
	}
	side := opts.DB.SpaceSide
	if side == 0 {
		side = peb.DefaultSpaceSide
	}
	if !ok {
		m := manifest{Version: manifestVersion, Shards: opts.Shards, SpaceSide: side, GridOrder: peb.DefaultGridOrder}
		data, err := marshalManifest(m)
		if err != nil {
			return err
		}
		if err := store.WriteFileAtomic(fsys, path, data); err != nil {
			return fmt.Errorf("sharded: write manifest: %w", err)
		}
		return nil
	}
	data, err := fsys.ReadFile(path)
	if err != nil {
		return fmt.Errorf("sharded: read manifest: %w", err)
	}
	m, err := unmarshalManifest(data)
	if err != nil {
		return err
	}
	if m.Shards != opts.Shards {
		return fmt.Errorf("sharded: directory holds %d shards, options ask for %d (resharding is not supported)", m.Shards, opts.Shards)
	}
	if m.SpaceSide != side {
		return fmt.Errorf("sharded: directory space side %g does not match options %g", m.SpaceSide, side)
	}
	if m.GridOrder != peb.DefaultGridOrder {
		// Shard ranges are value ranges on this curve order; reopening
		// them on a different order would silently misroute queries.
		return fmt.Errorf("sharded: directory grid order %d does not match engine order %d", m.GridOrder, peb.DefaultGridOrder)
	}
	return nil
}

// reconcile rebuilds the user→shard map from the shards' contents. A crash
// between the two halves of a re-homing update (insert into the new shard,
// remove from the old) can leave one user in two shards; the newer state
// (larger update time; ties broken toward the shard owning the stored
// position, then the lower index) wins and the stale entry is removed.
func (db *DB) reconcile() error {
	for i, s := range db.shards {
		objs, err := s.Objects()
		if err != nil {
			return fmt.Errorf("sharded: enumerate shard %d: %w", i, err)
		}
		for _, o := range objs {
			prev, dup := db.owner[o.UID]
			if !dup {
				db.owner[o.UID] = i
				continue
			}
			po, ok, err := db.shards[prev].Lookup(o.UID)
			if err != nil {
				return err
			}
			keepNew := !ok || o.T > po.T ||
				(o.T == po.T && db.shardOf(o.X, o.Y) == i)
			if keepNew {
				if ok {
					if err := db.shards[prev].Remove(o.UID); err != nil {
						return fmt.Errorf("sharded: heal duplicate user %d: %w", o.UID, err)
					}
				}
				db.owner[o.UID] = i
			} else {
				if err := db.shards[i].Remove(o.UID); err != nil {
					return fmt.Errorf("sharded: heal duplicate user %d: %w", o.UID, err)
				}
			}
		}
	}
	return nil
}

// shardOf maps a position to the index of the shard owning its Hilbert
// value.
func (db *DB) shardOf(x, y float64) int {
	v := db.grid.HilbertValue(x, y)
	i := sort.Search(len(db.ranges), func(i int) bool { return db.ranges[i].Hi >= v })
	if i >= len(db.ranges) {
		i = len(db.ranges) - 1
	}
	return i
}

// Shards returns the number of shards.
func (db *DB) Shards() int { return len(db.shards) }

// Close closes every shard and the router's decision log. Close drains
// cross-shard operations (it takes the barrier) and is idempotent.
func (db *DB) Close() error {
	db.smu.Lock()
	defer db.smu.Unlock()
	if db.closed {
		return nil
	}
	db.closed = true
	// Followers first: they tail the shard logs that are about to close.
	firstErr := db.closeReplicas()
	if db.txnLog != nil {
		if err := db.txnLog.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		db.txnLog = nil
	}
	for i, s := range db.shards {
		if err := s.Close(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("sharded: close shard %d: %w", i, err)
		}
	}
	return firstErr
}

// Upsert stores or replaces a user's movement update in the shard owning
// the new position. A user whose update crosses a shard boundary is
// re-homed: inserted into the new shard first, then removed from the old,
// so concurrent queries see the user throughout (briefly possibly twice;
// query merging keeps the newer state).
func (db *DB) Upsert(o Object) error {
	db.smu.RLock()
	defer db.smu.RUnlock()
	if db.closed {
		return ErrClosed
	}
	target := db.shardOf(o.X, o.Y)
	if err := db.shards[target].Upsert(o); err != nil {
		return err
	}
	db.noteWrite(target)
	db.ownMu.Lock()
	prev, had := db.owner[o.UID]
	db.owner[o.UID] = target
	db.ownMu.Unlock()
	if had && prev != target {
		if err := db.shards[prev].Remove(o.UID); err != nil {
			return fmt.Errorf("sharded: re-home user %d out of shard %d: %w", o.UID, prev, err)
		}
		db.noteWrite(prev)
	}
	return nil
}

// Remove deletes a user's index entry (their policies remain, in every
// shard). Removing a user with no index entry is an error, matching the
// single-tree engine.
func (db *DB) Remove(uid UserID) error {
	db.smu.RLock()
	defer db.smu.RUnlock()
	if db.closed {
		return ErrClosed
	}
	db.ownMu.Lock()
	idx, ok := db.owner[uid]
	db.ownMu.Unlock()
	if !ok {
		return fmt.Errorf("sharded: remove: user %d is not indexed", uid)
	}
	if err := db.shards[idx].Remove(uid); err != nil {
		return err
	}
	db.noteWrite(idx)
	db.ownMu.Lock()
	delete(db.owner, uid)
	db.ownMu.Unlock()
	return nil
}

// DefineRelation records a role relation. Policy state is broadcast to
// every shard (any shard must be able to evaluate the privacy predicate
// for the objects it holds) through the atomic cross-shard batch path, so
// a failure on any shard rolls the others back — the shards never
// disagree on the predicate.
func (db *DB) DefineRelation(owner, peer UserID, role Role) error {
	b := db.NewBatch()
	b.DefineRelation(owner, peer, role)
	return db.Apply(b)
}

// Grant adds a location-privacy policy, broadcast to every shard
// atomically (see DefineRelation).
func (db *DB) Grant(owner UserID, role Role, locr Region, tint TimeInterval) error {
	if !locr.Valid() {
		return &peb.InvalidRegionError{Region: locr}
	}
	b := db.NewBatch()
	b.Grant(owner, role, locr, tint)
	return db.Apply(b)
}

// EncodePolicies runs the offline policy-encoding phase once for the
// whole deployment: the sequence-value assignment is computed a single
// time — policies are broadcast, so every shard would derive the same one
// — over the union of every shard's users, then broadcast, and each shard
// rebuilds its own index under the shared result in parallel. Shared
// values also keep keys consistent across re-homing: a user moves shards
// with the same sequence value. Like the single-tree form, queries work
// without it but cluster better after it.
func (db *DB) EncodePolicies() error {
	db.smu.Lock()
	defer db.smu.Unlock()
	if db.closed {
		return ErrClosed
	}
	// Shard 0 knows every policy-bearing user (broadcast), but users who
	// only ever reported positions live in their owning shard alone; the
	// routing map is exactly that set, so folding it in makes the
	// assignment cover every indexed user on every shard.
	db.ownMu.Lock()
	extra := make([]UserID, 0, len(db.owner))
	for u := range db.owner {
		extra = append(extra, u)
	}
	db.ownMu.Unlock()
	enc, err := db.shards[0].ComputeEncoding(extra)
	if err != nil {
		return fmt.Errorf("sharded: compute encoding: %w", err)
	}
	errs := make([]error, len(db.shards))
	var wg sync.WaitGroup
	for i, s := range db.shards {
		wg.Add(1)
		go func(i int, s *peb.DB) {
			defer wg.Done()
			errs[i] = s.InstallEncoding(enc)
		}(i, s)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("sharded: install encoding on shard %d: %w", i, err)
		}
	}
	for i := range db.shards {
		db.noteWrite(i)
	}
	return nil
}

// Checkpoint runs every shard's checkpoint pipeline concurrently. Each
// pipeline stalls only its own shard's commits for its cut and publish
// moments; the other shards keep serving throughout — the per-shard
// version of the engine's non-blocking checkpoint. A fully successful
// pass also compacts the router's transaction decision log down to a
// single watermark record (every verdict it held has just become
// unreachable).
func (db *DB) Checkpoint() error {
	db.smu.RLock()
	defer db.smu.RUnlock()
	if db.closed {
		return ErrClosed
	}
	errs := make([]error, len(db.shards))
	var wg sync.WaitGroup
	for i, s := range db.shards {
		wg.Add(1)
		go func(i int, s *peb.DB) {
			defer wg.Done()
			errs[i] = s.Checkpoint()
		}(i, s)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("sharded: checkpoint shard %d: %w", i, err)
		}
	}
	// Every shard's log truncation has passed every decided transaction,
	// and the barrier we hold keeps new ones out: the decision log's
	// records are all unreachable now, so fold it down to its watermark.
	return db.compactDecisionLog()
}

// Lookup returns a user's stored movement state.
func (db *DB) Lookup(uid UserID) (Object, bool, error) {
	db.smu.RLock()
	defer db.smu.RUnlock()
	if db.closed {
		return Object{}, false, ErrClosed
	}
	db.ownMu.Lock()
	idx, ok := db.owner[uid]
	db.ownMu.Unlock()
	if !ok {
		return Object{}, false, nil
	}
	return db.shards[idx].Lookup(uid)
}

// Allows evaluates the raw policy predicate (policies are identical on
// every shard).
func (db *DB) Allows(owner, viewer UserID, x, y, t float64) bool {
	db.smu.RLock()
	defer db.smu.RUnlock()
	if db.closed {
		return false
	}
	return db.shards[0].Allows(owner, viewer, x, y, t)
}

// Size returns the number of indexed users.
func (db *DB) Size() int {
	db.smu.RLock()
	defer db.smu.RUnlock()
	if db.closed {
		return 0
	}
	db.ownMu.Lock()
	defer db.ownMu.Unlock()
	return len(db.owner)
}

// RangeQuery answers the privacy-aware range query by scatter-gather:
// shards whose Hilbert range cannot intersect the query region — enlarged
// by each shard's own motion slack, mirroring the enlargement the shard
// would apply internally — are pruned, the rest are queried concurrently,
// and the results are merged (sorted by user id; the single-tree engine
// returns scan order instead).
func (db *DB) RangeQuery(issuer UserID, r Region, t float64) ([]Object, error) {
	db.smu.RLock()
	defer db.smu.RUnlock()
	if db.closed {
		return nil, ErrClosed
	}
	if !r.Valid() {
		return nil, &peb.InvalidRegionError{Region: r}
	}
	return gatherRange(db.routeRegion(r, t, db.shardSlack), issuer, r, t,
		db.reader)
}

// NearestNeighbors answers the privacy-aware k-nearest-neighbor query by
// best-first shard expansion: shards are visited in order of the minimum
// distance any of their objects could have to the query point (their
// region's distance minus their motion slack), and the expansion stops
// once the next shard's bound exceeds the current k-th candidate — that
// shard, and every one after it, cannot contribute.
func (db *DB) NearestNeighbors(issuer UserID, x, y float64, k int, t float64) ([]Neighbor, error) {
	db.smu.RLock()
	defer db.smu.RUnlock()
	if db.closed {
		return nil, ErrClosed
	}
	return gatherKNN(db.knnOrder(x, y, t, db.shardSlack), issuer, x, y, k, t,
		db.reader)
}

// shardSlack is DB.MotionSlack for the live shards (the routing functions
// also run against pinned snapshots).
func (db *DB) shardSlack(i int, t float64) float64 {
	return db.shards[i].MotionSlack(t)
}

// routeRegion returns the indexes of the shards whose Hilbert range can
// hold an object relevant to a range query over r at time t. Each shard's
// region is effectively enlarged by its own motion slack: an object is
// stored under the position of its last update, so it can qualify for r
// while being stored up to slack away.
func (db *DB) routeRegion(r Region, t float64, slack func(int, float64) float64) []int {
	var out []int
	for i := range db.shards {
		ew := enlarge(r, slack(i, t))
		rect, ok := db.grid.RectOf(ew.MinX, ew.MinY, ew.MaxX, ew.MaxY)
		if !ok {
			continue // the enlarged window misses the space entirely
		}
		if zcurve.HilbertRangeIntersectsRect(rect, db.ranges[i], db.grid.Order) {
			out = append(out, i)
		}
	}
	return out
}

// knnOrder returns every shard with its candidate-distance lower bound,
// sorted ascending — the best-first expansion order.
func (db *DB) knnOrder(x, y, t float64, slack func(int, float64) float64) []knnShard {
	out := make([]knnShard, 0, len(db.shards))
	for i := range db.shards {
		lb := db.grid.HilbertMinDist(x, y, db.ranges[i]) - slack(i, t)
		if lb < 0 {
			lb = 0
		}
		out = append(out, knnShard{idx: i, lb: lb})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].lb != out[b].lb {
			return out[a].lb < out[b].lb
		}
		return out[a].idx < out[b].idx
	})
	return out
}

// enlarge grows a region by d on every side.
func enlarge(r Region, d float64) Region {
	return Region{MinX: r.MinX - d, MinY: r.MinY - d, MaxX: r.MaxX + d, MaxY: r.MaxY + d}
}

// querier is the query surface shared by live shards and their pinned
// snapshots, letting DB and Snapshot reuse one gather implementation.
type querier interface {
	RangeQuery(issuer UserID, r Region, t float64) ([]Object, error)
	NearestNeighbors(issuer UserID, x, y float64, k int, t float64) ([]Neighbor, error)
}

// gatherRange fans a range query out to the routed shards concurrently and
// merges the results: duplicates (a user caught mid-re-homing) keep the
// newer state, and the merged set is sorted by user id for determinism.
func gatherRange(idxs []int, issuer UserID, r Region, t float64, shard func(int) querier) ([]Object, error) {
	results := make([][]Object, len(idxs))
	errs := make([]error, len(idxs))
	var wg sync.WaitGroup
	for j, i := range idxs {
		wg.Add(1)
		go func(j, i int) {
			defer wg.Done()
			results[j], errs[j] = shard(i).RangeQuery(issuer, r, t)
		}(j, i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	merged := make(map[UserID]Object)
	for _, res := range results {
		for _, o := range res {
			if prev, ok := merged[o.UID]; !ok || o.T > prev.T {
				merged[o.UID] = o
			}
		}
	}
	if len(merged) == 0 {
		return nil, nil // match the single-tree engine's empty result
	}
	out := make([]Object, 0, len(merged))
	for _, o := range merged {
		out = append(out, o)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].UID < out[b].UID })
	return out, nil
}

// knnShard is one shard in best-first expansion order: no object of shard
// idx can be closer to the query point than lb.
type knnShard struct {
	idx int
	lb  float64
}

// gatherKNN merges per-shard k-nearest results under best-first expansion
// with a global bound: once k qualified candidates are in hand, a shard
// whose lower bound exceeds the k-th distance — and every later shard,
// since the order is ascending — is skipped. Shards with equal bounds are
// still visited (an equal-distance candidate with a smaller id would win
// the tie-break).
func gatherKNN(order []knnShard, issuer UserID, x, y float64, k int, t float64, shard func(int) querier) ([]Neighbor, error) {
	if k <= 0 {
		return nil, nil
	}
	best := make(map[UserID]Neighbor)
	kth := func() float64 {
		ds := make([]float64, 0, len(best))
		for _, nb := range best {
			ds = append(ds, nb.Dist)
		}
		sort.Float64s(ds)
		return ds[k-1]
	}
	for _, sh := range order {
		if len(best) >= k && sh.lb > kth() {
			break
		}
		res, err := shard(sh.idx).NearestNeighbors(issuer, x, y, k, t)
		if err != nil {
			return nil, err
		}
		for _, nb := range res {
			if prev, ok := best[nb.Object.UID]; !ok || nb.Object.T > prev.Object.T {
				best[nb.Object.UID] = nb
			}
		}
	}
	if len(best) == 0 {
		return nil, nil // match the single-tree engine's empty result
	}
	out := make([]Neighbor, 0, len(best))
	for _, nb := range best {
		out = append(out, nb)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Dist != out[b].Dist {
			return out[a].Dist < out[b].Dist
		}
		return out[a].Object.UID < out[b].Object.UID
	})
	if len(out) > k {
		out = out[:k]
	}
	return out, nil
}
