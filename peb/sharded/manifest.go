package sharded

import (
	"encoding/binary"
	"encoding/json"
	"fmt"

	"repro/internal/store"
)

// marshalManifest serializes the router's identity record.
func marshalManifest(m manifest) ([]byte, error) {
	data, err := json.Marshal(m)
	if err != nil {
		return nil, fmt.Errorf("sharded: marshal manifest: %w", err)
	}
	return data, nil
}

func unmarshalManifest(data []byte) (manifest, error) {
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return manifest{}, fmt.Errorf("sharded: parse manifest: %w", err)
	}
	if m.Version < 1 || m.Version > manifestVersion {
		return manifest{}, fmt.Errorf("sharded: manifest version %d not supported", m.Version)
	}
	return m, nil
}

// The decision log is the cross-shard commit point: a commit record for a
// transaction id, durably appended here, commits it; an id with no commit
// record is aborted. Each record is the 8-byte big-endian id followed by
// a verdict byte; a later record for the same id overrides an earlier one
// — which is what lets the router durably RETRACT a commit decision whose
// fsync failed (the bytes may have reached disk anyway, so simply not
// having acked it is not enough). The log is append-only between
// checkpoints; a full checkpoint pass compacts it to a single watermark
// record (see compactDecisionLog).

const (
	verdictAbort  byte = 0
	verdictCommit byte = 1
)

// openDecisionLog opens the router's transaction decision log and returns
// it with the committed-id set (after overrides) and the largest id
// recorded.
func openDecisionLog(fsys store.VFS, path string) (*store.WAL, map[uint64]bool, uint64, error) {
	log, records, err := store.OpenWAL(fsys, path, store.WALSyncAlways)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("sharded: open decision log: %w", err)
	}
	committed := make(map[uint64]bool, len(records))
	var max uint64
	for i, rec := range records {
		if len(rec) != 9 {
			log.Close()
			return nil, nil, 0, fmt.Errorf("sharded: decision log record %d has %d bytes, want 9", i, len(rec))
		}
		id := binary.BigEndian.Uint64(rec)
		if rec[8] == verdictCommit {
			committed[id] = true
		} else {
			delete(committed, id) // a durable retraction overrides
		}
		if id > max {
			max = id
		}
	}
	return log, committed, max, nil
}

// logDecision durably records a verdict for txnID. A commit verdict that
// returns nil is THE commit point of a cross-shard transaction: every
// participant's recovery resolves it as committed (via its own marker or
// the router's resolver). An abort verdict that returns nil durably
// retracts a possibly-persisted commit record, making an abort safe to
// act on.
func (db *DB) logDecision(txnID uint64, commit bool) error {
	var buf [9]byte
	binary.BigEndian.PutUint64(buf[:8], txnID)
	if commit {
		buf[8] = verdictCommit
	}
	tok, err := db.txnLog.Append(buf[:])
	if err != nil {
		return fmt.Errorf("sharded: decision log append: %w", err)
	}
	if err := db.txnLog.Commit(tok); err != nil {
		return fmt.Errorf("sharded: decision log sync: %w", err)
	}
	db.txnMu.Lock()
	db.txnDecisions++
	db.txnMu.Unlock()
	return nil
}

// compactDecisionLog rewrites the decision log to a single watermark
// record. Safe only when every recorded verdict has become unreachable,
// which is exactly the state after a full successful checkpoint pass:
// the caller (Checkpoint) holds the router's read barrier, so no
// cross-shard transaction is in flight — every recorded transaction was
// decided before the shards' checkpoints cut, its prepared and marker
// records fell to the shards' log truncations, and no future recovery can
// ever ask the decision log about it again.
//
// What must survive is id monotonicity: recovery seeds the id allocator
// from the largest id in this log and the shard logs, and the shard logs
// were just truncated. The single surviving record carries the highest id
// handed out so far, with an abort verdict — for an id no participant
// holds a record of, abort and absent mean the same thing.
func (db *DB) compactDecisionLog() error {
	db.txnMu.Lock()
	defer db.txnMu.Unlock()
	if db.txnLog == nil || db.txnDecisions == 0 {
		return nil
	}
	if err := db.txnLog.Truncate(); err != nil {
		return fmt.Errorf("sharded: compact decision log: %w", err)
	}
	var buf [9]byte
	binary.BigEndian.PutUint64(buf[:8], db.nextTxn-1)
	buf[8] = verdictAbort
	tok, err := db.txnLog.Append(buf[:])
	if err != nil {
		return fmt.Errorf("sharded: compact decision log: watermark append: %w", err)
	}
	if err := db.txnLog.Commit(tok); err != nil {
		return fmt.Errorf("sharded: compact decision log: watermark sync: %w", err)
	}
	db.txnDecisions = 0
	return nil
}

// allocTxn hands out the next transaction id (above every id any
// participant could still hold a record for).
func (db *DB) allocTxn() uint64 {
	db.txnMu.Lock()
	defer db.txnMu.Unlock()
	id := db.nextTxn
	db.nextTxn++
	return id
}
