package sharded

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/peb"
)

// TestShardedConcurrentStress exercises the router under -race: writers
// continuously re-home users across shard boundaries while readers run
// scatter-gather queries and take consistent snapshots. At quiescence the
// state must equal an oracle built from each user's last write.
func TestShardedConcurrentStress(t *testing.T) {
	db, err := Open(Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	day := TimeInterval{Start: 0, End: 1440}
	space := Region{MaxX: 1000, MaxY: 1000}
	const (
		writers      = 4
		usersPer     = 30
		opsPerWriter = 150
		issuer       = UserID(9001)
	)
	// Every user grants the issuer's role visibility everywhere, so the
	// final range query sees the whole population.
	for w := 0; w < writers; w++ {
		for u := 0; u < usersPer; u++ {
			uid := UserID(1000*w + u + 1)
			if err := db.DefineRelation(uid, issuer, "watcher"); err != nil {
				t.Fatal(err)
			}
			if err := db.Grant(uid, "watcher", space, day); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Each writer owns a disjoint user range, so its last write per user
	// is the authoritative final state.
	finals := make([]map[UserID]Object, writers)
	var writeWG, readWG sync.WaitGroup
	errCh := make(chan error, writers+2)
	for w := 0; w < writers; w++ {
		finals[w] = make(map[UserID]Object)
		writeWG.Add(1)
		go func(w int) {
			defer writeWG.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for i := 0; i < opsPerWriter; i++ {
				uid := UserID(1000*w + rng.Intn(usersPer) + 1)
				o := Object{
					UID: uid,
					X:   rng.Float64() * 1000, Y: rng.Float64() * 1000,
					VX: rng.Float64()*4 - 2, VY: rng.Float64()*4 - 2,
					T: float64(i % 60),
				}
				if err := db.Upsert(o); err != nil {
					errCh <- fmt.Errorf("writer %d: %w", w, err)
					return
				}
				finals[w][uid] = o
			}
		}(w)
	}
	stop := make(chan struct{})
	for r := 0; r < 2; r++ {
		readWG.Add(1)
		go func(r int) {
			defer readWG.Done()
			rng := rand.New(rand.NewSource(int64(200 + r)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				switch rng.Intn(3) {
				case 0:
					if _, err := db.RangeQuery(issuer, Region{
						MinX: rng.Float64() * 500, MinY: rng.Float64() * 500,
						MaxX: 500 + rng.Float64()*500, MaxY: 500 + rng.Float64()*500,
					}, 30); err != nil {
						errCh <- fmt.Errorf("reader %d PRQ: %w", r, err)
						return
					}
				case 1:
					if _, err := db.NearestNeighbors(issuer, rng.Float64()*1000, rng.Float64()*1000, 5, 30); err != nil {
						errCh <- fmt.Errorf("reader %d PkNN: %w", r, err)
						return
					}
				case 2:
					snap, err := db.Snapshot()
					if err != nil {
						errCh <- fmt.Errorf("reader %d snapshot: %w", r, err)
						return
					}
					if _, err := snap.RangeQuery(issuer, space, 30); err != nil {
						errCh <- fmt.Errorf("reader %d snapshot PRQ: %w", r, err)
						snap.Close()
						return
					}
					snap.Close()
				}
			}
		}(r)
	}

	writeWG.Wait()
	close(stop)
	readWG.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}

	// Quiescent equivalence: the final state equals each user's last write.
	want := make(map[UserID]Object)
	for _, m := range finals {
		for uid, o := range m {
			want[uid] = o
		}
	}
	if got := db.Size(); got != len(want) {
		t.Fatalf("final size %d, want %d", got, len(want))
	}
	for uid, o := range want {
		got, ok, err := db.Lookup(uid)
		if err != nil {
			t.Fatal(err)
		}
		if !ok || got != o {
			t.Fatalf("user %d final state %v (ok=%v), want %v", uid, got, ok, o)
		}
	}
	// And the scatter-gather result matches a fresh single-tree oracle
	// over the same final states.
	oracle, err := peb.Open(peb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer oracle.Close()
	for uid := range want {
		if err := oracle.DefineRelation(uid, issuer, "watcher"); err != nil {
			t.Fatal(err)
		}
		if err := oracle.Grant(uid, "watcher", space, day); err != nil {
			t.Fatal(err)
		}
	}
	ob := oracle.NewBatch()
	for _, o := range want {
		ob.Upsert(o)
	}
	if err := oracle.Apply(ob); err != nil {
		t.Fatal(err)
	}
	for _, r := range []Region{space, {MinX: 250, MinY: 250, MaxX: 750, MaxY: 750}} {
		got, err := db.RangeQuery(issuer, r, 30)
		if err != nil {
			t.Fatal(err)
		}
		wantQ, err := oracle.RangeQuery(issuer, r, 30)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, sortedByUID(wantQ)) {
			t.Fatalf("quiescent PRQ(%+v) diverged from oracle", r)
		}
	}
}

// TestShardedSnapshotCutConsistency: a snapshot must never observe half of
// a cross-shard batch. A writer keeps committing paired updates — two
// users pinned to different shards, always carrying the same timestamp —
// while snapshots assert the pair never tears.
func TestShardedSnapshotCutConsistency(t *testing.T) {
	db, err := Open(Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	// Two positions in different shards (opposite corners of the space).
	posA := [2]float64{100, 100}
	posB := [2]float64{900, 900}
	if db.shardOf(posA[0], posA[1]) == db.shardOf(posB[0], posB[1]) {
		t.Fatal("test positions landed in one shard")
	}
	const uidA, uidB = UserID(1), UserID(2)

	stop := make(chan struct{})
	errCh := make(chan error, 2)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for ver := 1; ; ver++ {
			select {
			case <-stop:
				return
			default:
			}
			b := db.NewBatch()
			b.Upsert(Object{UID: uidA, X: posA[0], Y: posA[1], T: float64(ver)})
			b.Upsert(Object{UID: uidB, X: posB[0], Y: posB[1], T: float64(ver)})
			if err := db.Apply(b); err != nil {
				errCh <- err
				return
			}
		}
	}()

	for i := 0; i < 200; i++ {
		snap, err := db.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		a, okA, errA := snap.Lookup(uidA)
		b, okB, errB := snap.Lookup(uidB)
		snap.Close()
		if errA != nil || errB != nil {
			t.Fatal(errA, errB)
		}
		if okA != okB {
			t.Fatalf("snapshot %d tore the batch: okA=%v okB=%v", i, okA, okB)
		}
		if okA && a.T != b.T {
			t.Fatalf("snapshot %d tore the batch: T %g vs %g", i, a.T, b.T)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
}
