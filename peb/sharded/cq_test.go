package sharded

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/peb/cq"
)

// The sharded continuous-query suite checks the merged delta streams
// against full re-runs of the one-shot queries. Because the merger is
// asynchronous (per-shard pumps feed it), equivalence is checked at
// quiescence: after a burst of commits the stream is drained until silent,
// and a mirror built purely from the deltas must equal the query result.
// Well-formedness (Enter only for absent users, Leave/Update only for
// present ones) is enforced on every delta along the way.

// cqMirror replays a merged delta stream into a result-set copy.
type cqMirror struct {
	name string
	objs map[UserID]Object
	dist map[UserID]float64
	knn  bool
}

func newCQMirror(name string, knn bool) *cqMirror {
	return &cqMirror{name: name, objs: make(map[UserID]Object), dist: make(map[UserID]float64), knn: knn}
}

func (m *cqMirror) seedRange(init []Object) {
	for _, o := range init {
		m.objs[o.UID] = o
	}
}

func (m *cqMirror) seedKNN(init []Neighbor) {
	for _, nb := range init {
		m.objs[nb.Object.UID] = nb.Object
		m.dist[nb.Object.UID] = nb.Dist
	}
}

func (m *cqMirror) apply(t *testing.T, d cq.Delta) {
	t.Helper()
	uid := d.Object.UID
	_, has := m.objs[uid]
	switch d.Kind {
	case cq.Enter:
		if has {
			t.Fatalf("%s: Enter for present user %d", m.name, uid)
		}
		m.objs[uid] = d.Object
		m.dist[uid] = d.Dist
	case cq.Leave:
		if !has {
			t.Fatalf("%s: Leave for absent user %d", m.name, uid)
		}
		delete(m.objs, uid)
		delete(m.dist, uid)
	case cq.Update:
		if !has {
			t.Fatalf("%s: Update for absent user %d", m.name, uid)
		}
		m.objs[uid] = d.Object
		m.dist[uid] = d.Dist
	default:
		t.Fatalf("%s: malformed delta %+v", m.name, d)
	}
	if d.Dropped != 0 {
		t.Fatalf("%s: unexpected drop report %d (buffers are sized to never drop here)", m.name, d.Dropped)
	}
}

// drainQuiet applies deltas until the stream has been silent for quiet.
func drainQuiet(t *testing.T, sub *Subscription, m *cqMirror, quiet time.Duration) {
	t.Helper()
	timer := time.NewTimer(quiet)
	defer timer.Stop()
	for {
		select {
		case d, ok := <-sub.Deltas():
			if !ok {
				t.Fatalf("%s: stream closed during drain: %v", m.name, sub.Err())
			}
			m.apply(t, d)
			if !timer.Stop() {
				<-timer.C
			}
			timer.Reset(quiet)
		case <-timer.C:
			return
		}
	}
}

func (m *cqMirror) checkRange(t *testing.T, db *DB, issuer UserID, r Region, qt float64) {
	t.Helper()
	want, err := db.RangeQuery(issuer, r, qt)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != len(m.objs) {
		t.Fatalf("%s: mirror has %d objects, query returns %d", m.name, len(m.objs), len(want))
	}
	for _, o := range want {
		got, ok := m.objs[o.UID]
		if !ok || got != o {
			t.Fatalf("%s: user %d: mirror %+v (present %v), query %+v", m.name, o.UID, got, ok, o)
		}
	}
}

func (m *cqMirror) checkKNN(t *testing.T, db *DB, issuer UserID, x, y float64, k int, qt float64) {
	t.Helper()
	want, err := db.NearestNeighbors(issuer, x, y, k, qt)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != len(m.objs) {
		t.Fatalf("%s: mirror has %d neighbors, query returns %d", m.name, len(m.objs), len(want))
	}
	for _, nb := range want {
		got, ok := m.objs[nb.Object.UID]
		if !ok || got != nb.Object || m.dist[nb.Object.UID] != nb.Dist {
			t.Fatalf("%s: neighbor %d: mirror %+v d=%g (present %v), query %+v d=%g",
				m.name, nb.Object.UID, got, m.dist[nb.Object.UID], ok, nb.Object, nb.Dist)
		}
	}
}

func cqClamp(r Region, side float64) Region {
	if r.MinX < 0 {
		r.MinX = 0
	}
	if r.MinY < 0 {
		r.MinY = 0
	}
	if r.MaxX > side {
		r.MaxX = side
	}
	if r.MaxY > side {
		r.MaxY = side
	}
	return r
}

func cqRandObject(rng *rand.Rand, uid UserID, now, side float64) Object {
	return Object{
		UID: uid,
		X:   rng.Float64() * side,
		Y:   rng.Float64() * side,
		VX:  (rng.Float64() - 0.5) * 3,
		VY:  (rng.Float64() - 0.5) * 3,
		T:   now,
	}
}

func cqSeedPolicies(t *testing.T, db *DB, rng *rand.Rand, nUsers int, side float64) {
	t.Helper()
	allDay := TimeInterval{Start: 0, End: 1440}
	for u := 1; u <= nUsers; u++ {
		role := Role(fmt.Sprintf("peer%d", u))
		for f := 0; f < 2+rng.Intn(5); f++ {
			peer := UserID(1 + rng.Intn(nUsers))
			if peer == UserID(u) {
				continue
			}
			if err := db.DefineRelation(UserID(u), peer, role); err != nil {
				t.Fatal(err)
			}
		}
		locr := Region{MinX: 0, MinY: 0, MaxX: side, MaxY: side}
		if rng.Intn(2) == 0 {
			cx, cy := rng.Float64()*side, rng.Float64()*side
			locr = cqClamp(Region{MinX: cx - 250, MinY: cy - 250, MaxX: cx + 250, MaxY: cy + 250}, side)
		}
		if err := db.Grant(UserID(u), role, locr, allDay); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.EncodePolicies(); err != nil {
		t.Fatal(err)
	}
}

// TestShardedCQOracle drives a random commit stream — single-shard
// upserts, re-homing moves, cross-shard batches, removes, policy flips,
// re-encodings — against merged range and PkNN subscriptions on a 4-shard
// DB, and periodically checks at quiescence that every delta mirror equals
// a fresh one-shot query.
func TestShardedCQOracle(t *testing.T) {
	const (
		shards    = 4
		nUsers    = 30
		steps     = 240
		checkEach = 80
		qt        = 300.0
		quiet     = 50 * time.Millisecond
	)
	db, err := Open(Options{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	side := db.shards[0].Bounds().MaxX
	rng := rand.New(rand.NewSource(7))
	cqSeedPolicies(t, db, rng, nUsers, side)
	now := 1.0
	for u := 1; u <= nUsers; u++ {
		if err := db.Upsert(cqRandObject(rng, UserID(u), now, side)); err != nil {
			t.Fatal(err)
		}
	}

	c, err := AttachCQ(db)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	type rangeSub struct {
		sub    *Subscription
		mirror *cqMirror
		issuer UserID
		r      Region
	}
	type knnSub struct {
		sub    *Subscription
		mirror *cqMirror
		issuer UserID
		x, y   float64
		k      int
	}
	opt := cq.SubOptions{Buffer: 8192}
	var rsubs []rangeSub
	for i := 0; i < 5; i++ {
		issuer := UserID(1 + rng.Intn(nUsers))
		cx, cy := rng.Float64()*side, rng.Float64()*side
		r := cqClamp(Region{MinX: cx - 220, MinY: cy - 220, MaxX: cx + 220, MaxY: cy + 220}, side)
		sub, init, err := c.SubscribeRange(issuer, r, qt, opt)
		if err != nil {
			t.Fatal(err)
		}
		m := newCQMirror(fmt.Sprintf("range[%d]", i), false)
		m.seedRange(init)
		m.checkRange(t, db, issuer, r, qt) // registration is atomic: initial == fresh query
		rsubs = append(rsubs, rangeSub{sub, m, issuer, r})
	}
	var ksubs []knnSub
	for i := 0; i < 3; i++ {
		issuer := UserID(1 + rng.Intn(nUsers))
		x, y := rng.Float64()*side, rng.Float64()*side
		k := 2 + rng.Intn(4)
		sub, init, err := c.SubscribePkNN(issuer, x, y, k, qt, opt)
		if err != nil {
			t.Fatal(err)
		}
		m := newCQMirror(fmt.Sprintf("knn[%d]", i), true)
		m.seedKNN(init)
		m.checkKNN(t, db, issuer, x, y, k, qt)
		ksubs = append(ksubs, knnSub{sub, m, issuer, x, y, k})
	}

	checkAll := func() {
		t.Helper()
		for _, rs := range rsubs {
			drainQuiet(t, rs.sub, rs.mirror, quiet)
			rs.mirror.checkRange(t, db, rs.issuer, rs.r, qt)
		}
		for _, ks := range ksubs {
			drainQuiet(t, ks.sub, ks.mirror, quiet)
			ks.mirror.checkKNN(t, db, ks.issuer, ks.x, ks.y, ks.k, qt)
		}
	}

	allDay := TimeInterval{Start: 0, End: 1440}
	for step := 1; step <= steps; step++ {
		now += rng.Float64()
		switch rng.Intn(10) {
		case 0: // cross-shard batch (2PC path)
			b := db.NewBatch()
			for j := 0; j < 2+rng.Intn(4); j++ {
				b.Upsert(cqRandObject(rng, UserID(1+rng.Intn(nUsers)), now, side))
			}
			if err := db.Apply(b); err != nil {
				t.Fatal(err)
			}
		case 1: // remove (tolerated failure when not indexed)
			_ = db.Remove(UserID(1 + rng.Intn(nUsers)))
		case 2: // policy flip: grant a fresh window
			u := UserID(1 + rng.Intn(nUsers))
			cx, cy := rng.Float64()*side, rng.Float64()*side
			locr := cqClamp(Region{MinX: cx - 300, MinY: cy - 300, MaxX: cx + 300, MaxY: cy + 300}, side)
			if err := db.Grant(u, Role(fmt.Sprintf("peer%d", u)), locr, allDay); err != nil {
				t.Fatal(err)
			}
		case 3: // relation flip
			u := UserID(1 + rng.Intn(nUsers))
			peer := UserID(1 + rng.Intn(nUsers))
			if peer != u {
				if err := db.DefineRelation(u, peer, Role(fmt.Sprintf("peer%d", u))); err != nil {
					t.Fatal(err)
				}
			}
		case 4:
			if step%60 == 0 { // occasional re-encode (rebuild rescan, empty diff)
				if err := db.EncodePolicies(); err != nil {
					t.Fatal(err)
				}
				break
			}
			fallthrough
		default: // movement update anywhere in space — re-homing at will
			if err := db.Upsert(cqRandObject(rng, UserID(1+rng.Intn(nUsers)), now, side)); err != nil {
				t.Fatal(err)
			}
		}
		if step%checkEach == 0 {
			checkAll()
		}
	}
	checkAll()
	st := c.Stats()
	if st.Naive <= st.Evaluated {
		t.Errorf("incremental evaluation did not beat naive: %+v", st)
	}
	t.Logf("sharded cq stats: %+v (reduction %.1fx)", st, float64(st.Naive)/float64(st.Evaluated))
	for _, rs := range rsubs {
		rs.sub.Close()
	}
	for _, ks := range ksubs {
		ks.sub.Close()
	}
}

// TestShardedCQRehoming moves one object back and forth across a shard
// boundary inside a subscribed region and checks, at each quiescence, that
// the mirror tracks the true state — re-homing must never lose or
// duplicate the user in the merged stream.
func TestShardedCQRehoming(t *testing.T) {
	const qt = 100.0
	db, err := Open(Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	side := db.shards[0].Bounds().MaxX
	if err := db.DefineRelation(1, 2, "buddy"); err != nil {
		t.Fatal(err)
	}
	if err := db.Grant(1, "buddy", Region{MinX: 0, MinY: 0, MaxX: side, MaxY: side},
		TimeInterval{Start: 0, End: 1440}); err != nil {
		t.Fatal(err)
	}

	// Two positions in the subscribed region homed in different shards.
	var pa, pb [2]float64
	found := false
	r := Region{MinX: 0, MinY: 0, MaxX: side, MaxY: side}
	for y := side / 8; y < side && !found; y += side / 8 {
		for x := side / 16; x < side; x += side / 16 {
			if db.shardOf(x, y) != db.shardOf(side-x, side-y) {
				pa = [2]float64{x, y}
				pb = [2]float64{side - x, side - y}
				found = true
				break
			}
		}
	}
	if !found {
		t.Fatal("no shard boundary found in space")
	}

	now := 1.0
	if err := db.Upsert(Object{UID: 1, X: pa[0], Y: pa[1], T: now}); err != nil {
		t.Fatal(err)
	}
	c, err := AttachCQ(db)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sub, init, err := c.SubscribeRange(2, r, qt, cq.SubOptions{Buffer: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	m := newCQMirror("rehoming", false)
	m.seedRange(init)
	if len(m.objs) != 1 {
		t.Fatalf("expected user 1 in initial result, got %d objects", len(m.objs))
	}
	for i := 0; i < 20; i++ {
		now++
		p := pa
		if i%2 == 0 {
			p = pb
		}
		if err := db.Upsert(Object{UID: 1, X: p[0], Y: p[1], T: now}); err != nil {
			t.Fatal(err)
		}
		drainQuiet(t, sub, m, 30*time.Millisecond)
		got, ok := m.objs[1]
		if !ok {
			t.Fatalf("step %d: user 1 lost across re-homing", i)
		}
		if got.X != p[0] || got.Y != p[1] || got.T != now {
			t.Fatalf("step %d: mirror stale: %+v, want pos (%g,%g) t=%g", i, got, p[0], p[1], now)
		}
	}
}

// TestShardedCQLifecycle covers teardown: a caller Close ends the stream
// with a nil Err, CQ.Close cancels live subscriptions with
// cq.ErrEngineClosed, and subscriptions after CQ.Close are refused.
func TestShardedCQLifecycle(t *testing.T) {
	db, err := Open(Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	side := db.shards[0].Bounds().MaxX
	c, err := AttachCQ(db)
	if err != nil {
		t.Fatal(err)
	}
	r := Region{MinX: 0, MinY: 0, MaxX: side, MaxY: side}

	s1, _, err := c.SubscribeRange(1, r, 10, cq.SubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s1.Close()
	if _, ok := <-s1.Deltas(); ok {
		t.Fatal("channel still open after Close")
	}
	if err := s1.Err(); err != nil {
		t.Fatalf("caller Close must leave a nil Err, got %v", err)
	}
	s1.Close() // idempotent

	s2, _, err := c.SubscribePkNN(1, side/2, side/2, 3, 10, cq.SubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	for range s2.Deltas() {
	}
	if err := s2.Err(); err != cq.ErrEngineClosed {
		t.Fatalf("CQ.Close must cancel with ErrEngineClosed, got %v", err)
	}
	if _, _, err := c.SubscribeRange(1, r, 10, cq.SubOptions{}); err != cq.ErrEngineClosed {
		t.Fatalf("subscribe after Close must fail with ErrEngineClosed, got %v", err)
	}
	c.Close() // idempotent
}

// TestShardedCQConcurrent runs committers against churning subscribers on
// a sharded DB — the -race exercise for the pump/merger machinery.
func TestShardedCQConcurrent(t *testing.T) {
	const (
		nUsers      = 40
		committers  = 3
		commitsEach = 120
		subscribers = 3
		subCycles   = 15
	)
	db, err := Open(Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	side := db.shards[0].Bounds().MaxX
	rng := rand.New(rand.NewSource(3))
	cqSeedPolicies(t, db, rng, nUsers, side)
	for u := 1; u <= nUsers; u++ {
		if err := db.Upsert(cqRandObject(rng, UserID(u), 0, side)); err != nil {
			t.Fatal(err)
		}
	}
	c, err := AttachCQ(db)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var wg sync.WaitGroup
	errc := make(chan error, committers+subscribers)
	for w := 0; w < committers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			now := 1.0
			for i := 0; i < commitsEach; i++ {
				now += rng.Float64()
				var err error
				switch {
				case rng.Intn(12) == 0:
					b := db.NewBatch()
					for j := 0; j < 1+rng.Intn(4); j++ {
						b.Upsert(cqRandObject(rng, UserID(1+rng.Intn(nUsers)), now, side))
					}
					err = db.Apply(b)
				case rng.Intn(12) == 0:
					u := UserID(1 + rng.Intn(nUsers))
					err = db.Grant(u, Role(fmt.Sprintf("peer%d", u)),
						Region{MinX: 0, MinY: 0, MaxX: side, MaxY: side}, TimeInterval{Start: 0, End: 1440})
				default:
					err = db.Upsert(cqRandObject(rng, UserID(1+rng.Intn(nUsers)), now, side))
				}
				if err != nil {
					errc <- fmt.Errorf("committer: %w", err)
					return
				}
			}
		}(int64(w) + 400)
	}
	for w := 0; w < subscribers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for cyc := 0; cyc < subCycles; cyc++ {
				issuer := UserID(1 + rng.Intn(nUsers))
				var sub *Subscription
				var err error
				if rng.Intn(2) == 0 {
					cx, cy := rng.Float64()*side, rng.Float64()*side
					r := cqClamp(Region{MinX: cx - 200, MinY: cy - 200, MaxX: cx + 200, MaxY: cy + 200}, side)
					sub, _, err = c.SubscribeRange(issuer, r, 200, cq.SubOptions{Buffer: 64})
				} else {
					sub, _, err = c.SubscribePkNN(issuer, rng.Float64()*side, rng.Float64()*side,
						1+rng.Intn(4), 200, cq.SubOptions{Buffer: 64, Overflow: cq.Cancel})
				}
				if err != nil {
					errc <- fmt.Errorf("subscribe: %w", err)
					return
				}
				deadline := time.After(5 * time.Millisecond)
			drain:
				for {
					select {
					case _, ok := <-sub.Deltas():
						if !ok {
							break drain
						}
					case <-deadline:
						break drain
					}
				}
				sub.Close()
			}
		}(int64(w) + 500)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if live := c.Stats().Live; live != 0 {
		t.Fatalf("per-shard subscriptions leaked: %d live", live)
	}
}
