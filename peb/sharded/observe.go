package sharded

import (
	"fmt"

	"repro/internal/obs"
)

// Router-level observability. Each shard engine carries its own registry
// (const label shard="NNN", the stable shard id) and event log; the router
// adds a registry of its own for topology-scoped series — per-shard
// routed-load rates, follower lag, split/merge counters — plus an event
// log for maintainer decisions (AutoReshard verdicts, 2PC outcomes,
// replica stall/catch-up transitions). MetricsRegistries gathers all of
// them for one exposition endpoint; the set changes as shards split and
// merge, so callers re-gather per scrape rather than caching.

// initObs builds the router's registry and event log. Called from Open
// before the DB is shared.
func (db *DB) initObs() {
	db.obsReg = obs.NewRegistry()
	db.events = obs.NewEventLog(obs.DefaultEventLogSize, db.opts.DB.Logger)
	db.obsReg.Collect(db.collectMetrics)
}

// shardLabel renders a shard id the way per-engine registries do, so
// router series and engine series join on the same label value.
func shardLabel(id int) string { return fmt.Sprintf("%03d", id) }

// collectMetrics emits the router's scrape-time series. It runs without
// the barrier held by the caller (MetricsRegistries returns before text
// rendering starts), so taking the read barrier here is deadlock-free.
func (db *DB) collectMetrics(e *obs.Emit) {
	st := db.Stats()
	for _, ss := range st.Shards {
		lbl := obs.Label{Key: "shard", Value: shardLabel(ss.ID)}
		e.Counter("peb_shard_commits_total", "Commits the router routed to the shard.", float64(ss.Commits), lbl)
		e.Counter("peb_shard_queries_total", "One-shot queries that consulted the shard.", float64(ss.Queries), lbl)
		e.Gauge("peb_shard_commit_rate", "EWMA routed commits per second (the hot-shard detector's input).", ss.CommitRate, lbl)
		e.Gauge("peb_shard_query_rate", "EWMA routed queries per second.", ss.QueryRate, lbl)
		e.Gauge("peb_shard_size", "Shard's indexed population.", float64(ss.Size), lbl)
	}
	e.Gauge("peb_router_shards", "Live shards in the topology.", float64(len(st.Shards)))
	e.Counter("peb_router_epoch", "Topology version (advances on every routing change).", float64(st.Epoch))
	e.Counter("peb_router_splits_total", "Completed online shard splits since open.", float64(st.Splits))
	e.Counter("peb_router_merges_total", "Completed online shard merges since open.", float64(st.Merges))
	e.Counter("peb_router_follower_reads_total", "Shard queries served by a replica follower.", float64(st.FollowerReads))
	e.Counter("peb_router_primary_fallbacks_total", "Follower reads that fell back to the primary.", float64(st.PrimaryFallbacks))
	e.Gauge("peb_router_txn_decisions", "2PC verdicts in the decision log since its last compaction.", float64(st.TxnDecisions))
	e.Gauge("peb_router_txn_log_bytes", "Decision-log size on disk.", float64(st.TxnLogBytes))
	e.Counter("peb_router_events_total", "Router events recorded since open (the ring retains the tail).", float64(db.events.Total()))

	ids, lags := db.followerLagsByShard()
	for si, pool := range lags {
		for ri, lr := range pool {
			e.Gauge("peb_follower_lag_records",
				"Follower apply lag in WAL records behind the shard's committed sequence.",
				float64(lr.Lag),
				obs.Label{Key: "shard", Value: shardLabel(ids[si])},
				obs.Label{Key: "replica", Value: fmt.Sprintf("%d", ri)})
		}
	}
}

// MetricsRegistries returns the router's registry plus every live shard
// engine's, for one merged exposition (internal/obs.WriteText merges the
// per-shard families under shared HELP/TYPE headers). The set follows the
// topology: gather it per scrape, not once.
func (db *DB) MetricsRegistries() []*obs.Registry {
	db.smu.RLock()
	defer db.smu.RUnlock()
	out := make([]*obs.Registry, 0, len(db.shards)+1)
	out = append(out, db.obsReg)
	for _, s := range db.shards {
		out = append(out, s.Metrics())
	}
	return out
}

// Events returns the router's event log: AutoReshard decisions with the
// observed rates that drove them, cross-shard transaction verdicts, and
// replica stall/catch-up transitions. Per-shard maintainer events
// (checkpoints, recovery, slow queries) live on each shard's own log.
func (db *DB) Events() *obs.EventLog { return db.events }
