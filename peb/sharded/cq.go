package sharded

import (
	"sort"
	"sync"

	"repro/internal/zcurve"
	"repro/peb"
	"repro/peb/cq"
)

// Continuous queries over the sharded engine.
//
// A CQ attaches one cq.Engine to every shard and routes standing queries
// the same way the router routes one-shot queries: a range subscription is
// installed only on the shards whose Hilbert-value range intersects the
// query region enlarged by the motion slack (MaxSpeed × MaxUpdateInterval);
// a PkNN subscription fans out to every shard, since any shard can hold a
// nearest neighbor. Each shard evaluates its slice incrementally against
// its own commits, and a per-subscription merger goroutine folds the
// per-shard delta streams into one.
//
// The merger does not forward shard deltas verbatim — it recomputes. It
// keeps the result slice each shard last reported (seeded by the per-shard
// initial results, maintained by the per-shard deltas) and derives the
// merged result the way the router's one-shot queries do: a user reported
// by several shards at once (caught mid-re-homing) counts once, newest
// state wins; PkNN keeps the global (Dist, UID)-ordered top k of the
// per-shard results. A delta is emitted only when the merged result
// changes, so the ordinary re-homing — insert into the new shard, then
// remove from the old — surfaces as a single Update (or nothing), not an
// Enter/Leave pair: global membership never lapses, because the insertion
// commits before the removal.
//
// Ordering across shards is the one caveat. Within a shard, deltas arrive
// in commit order; across shards there is no global order, and the
// removal's delta can outrun the insertion's when a re-homing races the
// pumps. The merged stream then reports Leave followed by Enter instead of
// one Update. Either way the stream stays well-formed (Enter only for
// absent users, Leave only for present ones) and mirrors of the stream
// converge to the true result once the stream quiesces — the contract the
// sharded oracle test enforces.
//
// The per-shard subscriptions run with the Cancel overflow policy over a
// generous buffer: the merger's per-shard result slices are state, and a
// silently dropped shard delta would corrupt them. The consumer-facing
// channel honors the caller's own SubOptions; a slow consumer costs the
// caller gaps (DropOldest) or their subscription (Cancel), never merge
// correctness.

// CQ is the standing-query router over a sharded DB: one incremental
// engine per shard plus a merger per subscription. Create it with
// AttachCQ; all methods are safe for concurrent use.
type CQ struct {
	db      *DB
	engines []*cq.Engine
	slack   float64

	mu     sync.Mutex
	closed bool
}

// AttachCQ builds the continuous-query layer over db, attaching an
// incremental evaluation engine to every shard.
func AttachCQ(db *DB) (*CQ, error) {
	db.smu.RLock()
	defer db.smu.RUnlock()
	if db.closed {
		return nil, ErrClosed
	}
	c := &CQ{
		db:      db,
		engines: make([]*cq.Engine, len(db.shards)),
		slack:   db.shards[0].MaxSpeed() * db.shards[0].MaxUpdateInterval(),
	}
	for i, s := range db.shards {
		e, err := cq.Attach(s)
		if err != nil {
			for _, prev := range c.engines[:i] {
				prev.Close()
			}
			return nil, err
		}
		c.engines[i] = e
	}
	return c, nil
}

// Close detaches every per-shard engine. Every live subscription's channel
// closes and its Err reports cq.ErrEngineClosed.
func (c *CQ) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	for _, e := range c.engines {
		e.Close()
	}
}

// Stats returns the per-shard engines' counters summed — the sharded
// deployment's aggregate incremental-evaluation picture.
func (c *CQ) Stats() cq.Stats {
	var out cq.Stats
	for _, e := range c.engines {
		st := e.Stats()
		out.Commits += st.Commits
		out.Evaluated += st.Evaluated
		out.Pruned += st.Pruned
		out.Naive += st.Naive
		out.Rescans += st.Rescans
		out.Deltas += st.Deltas
		out.Dropped += st.Dropped
		out.Live += st.Live
	}
	return out
}

// Subscription is a caller's handle on one merged standing query.
// Semantics mirror cq.Subscription: receive from Deltas, stop with Close,
// inspect Err once the channel closes.
type Subscription struct {
	out   chan cq.Delta
	stopC chan struct{}

	shardIdx  []int
	shardSubs []*cq.Subscription

	mu      sync.Mutex
	err     error
	closing bool

	// Merger-goroutine state (single-threaded after construction).
	knn            bool
	k              int
	policy         cq.OverflowPolicy
	perShard       []map[UserID]Object  // shard slice of the result, per fanned-out shard
	perDist        []map[UserID]float64 // knn only
	emitted        map[UserID]Object    // the merged result the consumer has been told
	emittedDist    map[UserID]float64   // knn only
	seq            uint64
	pendingDropped int
}

// Deltas returns the merged delta channel. It closes when the subscription
// ends — by Close, by CQ.Close, or by the overflow policy.
func (s *Subscription) Deltas() <-chan cq.Delta { return s.out }

// Err reports why the channel closed: nil after a plain Close,
// cq.ErrSlowConsumer, cq.ErrEngineClosed, or a per-shard evaluation error.
func (s *Subscription) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Close stops the subscription: the per-shard legs are unregistered, the
// merger drains, and the merged channel closes. Idempotent.
func (s *Subscription) Close() { s.shutdown(nil) }

// shutdown begins teardown, recording err as the terminal cause when one
// is given and none is set. Safe from any goroutine, any number of times.
func (s *Subscription) shutdown(err error) {
	s.mu.Lock()
	first := !s.closing
	if first {
		s.closing = true
		s.err = err
	}
	s.mu.Unlock()
	if !first {
		return
	}
	close(s.stopC)
	for _, ss := range s.shardSubs {
		ss.Close()
	}
}

func (s *Subscription) isClosing() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closing
}

// shardBuffer sizes the per-shard legs from the caller's buffer choice.
// The legs run with the Cancel policy (a dropped leg delta would corrupt
// the merger's state), so they get several times the consumer's capacity:
// the merger drains them continuously and only ever stalls on its own
// bounded recompute, never on the consumer.
func shardBuffer(opt cq.SubOptions) int {
	b := opt.Buffer
	if b <= 0 {
		b = 256
	}
	if b < 1024 {
		b = 1024
	}
	return 4 * b
}

// consumerBuffer mirrors cq.SubOptions' zero-value default for the merged
// channel.
func consumerBuffer(opt cq.SubOptions) int {
	if opt.Buffer <= 0 {
		return 256
	}
	return opt.Buffer
}

// routeSubscription returns the shards a range subscription must cover:
// those whose Hilbert range intersects the region enlarged by the static
// motion slack. Unlike one-shot routing this cannot consult the live
// MotionSlack (the fan-out is fixed at subscribe time), so it assumes the
// update contract — objects refresh within MaxUpdateInterval — exactly as
// the per-shard engines' interval prune does. An object violating the
// contract re-enters the merged result at its next update, when re-homing
// lands it in a covered shard.
func (c *CQ) routeSubscription(r Region) []int {
	var out []int
	ew := enlarge(r, c.slack)
	rect, ok := c.db.grid.RectOf(ew.MinX, ew.MinY, ew.MaxX, ew.MaxY)
	if !ok {
		return nil // the enlarged region misses the space entirely
	}
	for i := range c.db.ranges {
		if zcurve.HilbertRangeIntersectsRect(rect, c.db.ranges[i], c.db.grid.Order) {
			out = append(out, i)
		}
	}
	return out
}

// SubscribeRange registers issuer's PRQ over region r at evaluation time t
// as a merged continuous query and returns the current merged result.
// Registration holds the router's read barrier, so it is atomic with
// respect to cross-shard operations; per-shard legs register atomically
// against their own shard's commits, and the merger reconciles anything a
// concurrent re-homing slips between the legs.
func (c *CQ) SubscribeRange(issuer UserID, r Region, t float64, opt cq.SubOptions) (*Subscription, []Object, error) {
	if !r.Valid() {
		return nil, nil, &peb.InvalidRegionError{Region: r}
	}
	c.db.smu.RLock()
	defer c.db.smu.RUnlock()
	if err := c.usable(); err != nil {
		return nil, nil, err
	}
	s := c.newSub(false, 0, opt)
	for _, i := range c.routeSubscription(r) {
		ss, init, err := c.engines[i].SubscribeRange(issuer, r, t,
			cq.SubOptions{Buffer: shardBuffer(opt), Overflow: cq.Cancel})
		if err != nil {
			s.abandonLegs()
			return nil, nil, err
		}
		slice := make(map[UserID]Object, len(init))
		for _, o := range init {
			slice[o.UID] = o
		}
		s.addLeg(i, ss, slice, nil)
	}
	initial := s.seedRange()
	s.start()
	return s, initial, nil
}

// SubscribePkNN registers issuer's PkNN centered at (x, y) with result
// size k at evaluation time t as a merged continuous query. Every shard
// gets a leg — any shard can hold a nearest neighbor — and the merger
// keeps the global (Dist, UID)-ordered top k of the per-shard results,
// exactly like the router's one-shot NearestNeighbors.
func (c *CQ) SubscribePkNN(issuer UserID, x, y float64, k int, t float64, opt cq.SubOptions) (*Subscription, []Neighbor, error) {
	c.db.smu.RLock()
	defer c.db.smu.RUnlock()
	if err := c.usable(); err != nil {
		return nil, nil, err
	}
	s := c.newSub(true, k, opt)
	for i := range c.engines {
		ss, init, err := c.engines[i].SubscribePkNN(issuer, x, y, k, t,
			cq.SubOptions{Buffer: shardBuffer(opt), Overflow: cq.Cancel})
		if err != nil {
			s.abandonLegs()
			return nil, nil, err
		}
		slice := make(map[UserID]Object, len(init))
		dist := make(map[UserID]float64, len(init))
		for _, nb := range init {
			slice[nb.Object.UID] = nb.Object
			dist[nb.Object.UID] = nb.Dist
		}
		s.addLeg(i, ss, slice, dist)
	}
	initial := s.seedKNN()
	s.start()
	return s, initial, nil
}

// usable reports whether the CQ and its DB still accept subscriptions.
// Caller holds db.smu (either side).
func (c *CQ) usable() error {
	if c.db.closed {
		return ErrClosed
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return cq.ErrEngineClosed
	}
	return nil
}

func (c *CQ) newSub(knn bool, k int, opt cq.SubOptions) *Subscription {
	return &Subscription{
		out:    make(chan cq.Delta, consumerBuffer(opt)),
		stopC:  make(chan struct{}),
		knn:    knn,
		k:      k,
		policy: opt.Overflow,
	}
}

func (s *Subscription) addLeg(shard int, ss *cq.Subscription, slice map[UserID]Object, dist map[UserID]float64) {
	s.shardIdx = append(s.shardIdx, shard)
	s.shardSubs = append(s.shardSubs, ss)
	s.perShard = append(s.perShard, slice)
	s.perDist = append(s.perDist, dist)
}

// abandonLegs tears down the legs of a subscription that failed to
// register fully (no merger ever starts).
func (s *Subscription) abandonLegs() {
	for _, ss := range s.shardSubs {
		ss.Close()
	}
}

// seedRange computes the merged initial result from the per-shard initials
// and primes the emitted state with it: union, duplicates keep the newer
// state, sorted by user id — the same merge one-shot RangeQuery performs.
func (s *Subscription) seedRange() []Object {
	s.emitted = make(map[UserID]Object)
	for _, slice := range s.perShard {
		for uid, o := range slice {
			if prev, ok := s.emitted[uid]; !ok || o.T > prev.T {
				s.emitted[uid] = o
			}
		}
	}
	out := make([]Object, 0, len(s.emitted))
	for _, o := range s.emitted {
		out = append(out, o)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].UID < out[b].UID })
	return out
}

// seedKNN computes the merged initial top k and primes the emitted state.
func (s *Subscription) seedKNN() []Neighbor {
	res := s.mergedKNN()
	s.emitted = make(map[UserID]Object, len(res))
	s.emittedDist = make(map[UserID]float64, len(res))
	for _, nb := range res {
		s.emitted[nb.Object.UID] = nb.Object
		s.emittedDist[nb.Object.UID] = nb.Dist
	}
	return res
}

// mergedKNN derives the merged top k from the per-shard result slices:
// duplicates keep the newer state, order is (Dist, UID), truncated to k.
func (s *Subscription) mergedKNN() []Neighbor {
	best := make(map[UserID]Neighbor)
	for j := range s.perShard {
		for uid, o := range s.perShard[j] {
			nb := Neighbor{Object: o, Dist: s.perDist[j][uid]}
			if prev, ok := best[uid]; !ok || o.T > prev.Object.T {
				best[uid] = nb
			}
		}
	}
	out := make([]Neighbor, 0, len(best))
	for _, nb := range best {
		out = append(out, nb)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Dist != out[b].Dist {
			return out[a].Dist < out[b].Dist
		}
		return out[a].Object.UID < out[b].Object.UID
	})
	if len(out) > s.k {
		out = out[:s.k]
	}
	return out
}

// legDelta is one delta tagged with the leg it arrived on; done marks a
// leg's channel closing.
type legDelta struct {
	leg  int
	d    cq.Delta
	done bool
}

// start launches the pumps and the merger. One pump per leg forwards that
// leg's deltas into the mux; a sentinel keeps the mux open until shutdown
// even when the fan-out is empty; the merger folds the mux into the
// consumer channel and closes it when every pump has drained.
func (s *Subscription) start() {
	mux := make(chan legDelta, len(s.shardSubs)+1)
	var wg sync.WaitGroup
	for j, ss := range s.shardSubs {
		wg.Add(1)
		go func(j int, ss *cq.Subscription) {
			defer wg.Done()
			for d := range ss.Deltas() {
				mux <- legDelta{leg: j, d: d}
			}
			mux <- legDelta{leg: j, done: true}
		}(j, ss)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-s.stopC
	}()
	go func() {
		wg.Wait()
		close(mux)
	}()
	go s.merge(mux)
}

// merge is the merger goroutine: it consumes tagged leg deltas until every
// pump exits, recomputing the merged result per delta and emitting only
// real transitions. It never blocks on the consumer (the overflow policy
// rules there), so the pumps always drain and shutdown cannot wedge.
func (s *Subscription) merge(mux <-chan legDelta) {
	defer close(s.out)
	for ld := range mux {
		if ld.done {
			// A leg ended. Caller-initiated Close already recorded nil;
			// anything else (engine close, slow merger, evaluation error)
			// terminates the merged subscription with the leg's cause.
			if err := s.shardSubs[ld.leg].Err(); err != nil {
				s.shutdown(err)
			} else if !s.isClosing() {
				s.shutdown(cq.ErrEngineClosed)
			}
			continue
		}
		if s.isClosing() {
			continue // draining; the consumer is gone
		}
		s.seq++
		if s.knn {
			s.applyKNN(ld.leg, ld.d)
		} else {
			s.applyRange(ld.leg, ld.d)
		}
	}
}

// applyRange folds one leg delta into a range subscription: update the
// leg's slice, recompute the touched user's merged state across legs, and
// emit iff the consumer-visible state changed.
func (s *Subscription) applyRange(leg int, d cq.Delta) {
	uid := d.Object.UID
	switch d.Kind {
	case cq.Leave:
		delete(s.perShard[leg], uid)
	default:
		s.perShard[leg][uid] = d.Object
	}
	var cur *Object
	for j := range s.perShard {
		if o, ok := s.perShard[j][uid]; ok && (cur == nil || o.T > cur.T) {
			o := o
			cur = &o
		}
	}
	prev, was := s.emitted[uid]
	switch {
	case cur != nil && !was:
		s.emitted[uid] = *cur
		s.emit(cq.Delta{Kind: cq.Enter, Object: *cur, Seq: s.seq})
	case cur == nil && was:
		delete(s.emitted, uid)
		s.emit(cq.Delta{Kind: cq.Leave, Object: prev, Seq: s.seq})
	case cur != nil && was && *cur != prev:
		s.emitted[uid] = *cur
		s.emit(cq.Delta{Kind: cq.Update, Object: *cur, Seq: s.seq})
	}
}

// applyKNN folds one leg delta into a PkNN subscription: update the leg's
// slice, recompute the merged top k, and emit its diff against the
// consumer's view — leaves first (sorted by user id), then enters and
// updates in (Dist, UID) order, all sharing one sequence tick.
func (s *Subscription) applyKNN(leg int, d cq.Delta) {
	uid := d.Object.UID
	switch d.Kind {
	case cq.Leave:
		delete(s.perShard[leg], uid)
		delete(s.perDist[leg], uid)
	default:
		s.perShard[leg][uid] = d.Object
		s.perDist[leg][uid] = d.Dist
	}
	res := s.mergedKNN()
	newE := make(map[UserID]Object, len(res))
	newD := make(map[UserID]float64, len(res))
	for _, nb := range res {
		newE[nb.Object.UID] = nb.Object
		newD[nb.Object.UID] = nb.Dist
	}
	var gone []UserID
	for u := range s.emitted {
		if _, ok := newE[u]; !ok {
			gone = append(gone, u)
		}
	}
	sort.Slice(gone, func(a, b int) bool { return gone[a] < gone[b] })
	for _, u := range gone {
		s.emit(cq.Delta{Kind: cq.Leave, Object: s.emitted[u], Dist: s.emittedDist[u], Seq: s.seq})
	}
	for _, nb := range res {
		u := nb.Object.UID
		old, was := s.emitted[u]
		switch {
		case !was:
			s.emit(cq.Delta{Kind: cq.Enter, Object: nb.Object, Dist: nb.Dist, Seq: s.seq})
		case old != nb.Object || s.emittedDist[u] != nb.Dist:
			s.emit(cq.Delta{Kind: cq.Update, Object: nb.Object, Dist: nb.Dist, Seq: s.seq})
		}
	}
	s.emitted = newE
	s.emittedDist = newD
}

// emit delivers one merged delta under the caller's overflow policy,
// without ever blocking the merger (a blocked merger would back up every
// leg). Semantics mirror the single-DB engine's send.
func (s *Subscription) emit(d cq.Delta) {
	if s.isClosing() {
		return // a Cancel overflow mid-diff: swallow the rest
	}
	for {
		d.Dropped = s.pendingDropped
		select {
		case s.out <- d:
			s.pendingDropped = 0
			return
		default:
		}
		if s.policy == cq.Cancel {
			s.shutdown(cq.ErrSlowConsumer)
			return
		}
		select {
		case old := <-s.out:
			s.pendingDropped += 1 + old.Dropped
		default:
		}
	}
}
