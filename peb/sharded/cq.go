package sharded

import (
	"sort"
	"sync"

	"repro/internal/zcurve"
	"repro/peb"
	"repro/peb/cq"
)

// Continuous queries over the sharded engine.
//
// A CQ attaches one cq.Engine to every shard and routes standing queries
// the same way the router routes one-shot queries: a range subscription is
// installed only on the shards whose Hilbert-value COVER intersects the
// query region enlarged by the motion slack (MaxSpeed × MaxUpdateInterval);
// a PkNN subscription fans out to every shard, since any shard can hold a
// nearest neighbor. Each shard evaluates its slice incrementally against
// its own commits, and a per-subscription merger goroutine folds the
// per-shard delta streams into one.
//
// The fan-out is no longer fixed at subscribe time: the topology changes
// online (reshard.go), and the router notifies every attached CQ under
// the same write barrier that commits the change. A split's new shard
// (or a merge target's widened cover) gets a fresh leg injected into
// every subscription it now concerns — registered against the new shard
// before any commit can land there, so no delta is missed — and a
// merge-drained shard's legs are retired: the leg is removed from the
// merge state and the residue reconciled, instead of tearing the whole
// subscription down. A subscription therefore lives across any number of
// splits and merges without dropping or duplicating deltas; migration
// itself moves objects with their timestamps intact, so a move surfaces
// as no delta at all (or the documented transient Leave/Enter when the
// streams race), exactly like ordinary re-homing.
//
// The merger does not forward shard deltas verbatim — it recomputes. It
// keeps the result slice each leg last reported (seeded by the per-shard
// initial results, maintained by the per-shard deltas) and derives the
// merged result the way the router's one-shot queries do: a user reported
// by several shards at once (caught mid-re-homing or mid-migration)
// counts once, newest state wins; PkNN keeps the global (Dist, UID)-
// ordered top k of the per-shard results. A delta is emitted only when
// the merged result changes.
//
// Ordering across shards is the one caveat. Within a shard, deltas arrive
// in commit order; across shards there is no global order, and a
// removal's delta can outrun the insertion's when a re-homing (or a
// migration batch) races the pumps. The merged stream then reports Leave
// followed by Enter instead of nothing. Either way the stream stays
// well-formed (Enter only for absent users, Leave only for present ones)
// and mirrors of the stream converge to the true result once the stream
// quiesces — the contract the sharded oracle test enforces.
//
// The per-shard subscriptions run with the Cancel overflow policy over a
// generous buffer: the merger's per-leg result slices are state, and a
// silently dropped shard delta would corrupt them. The consumer-facing
// channel honors the caller's own SubOptions; a slow consumer costs the
// caller gaps (DropOldest) or their subscription (Cancel), never merge
// correctness.

// CQ is the standing-query router over a sharded DB: one incremental
// engine per shard plus a merger per subscription. Create it with
// AttachCQ; all methods are safe for concurrent use.
type CQ struct {
	db    *DB
	slack float64

	// mu guards the maps below; it is a leaf with respect to db.smu and
	// is never held across an engine or merger interaction.
	mu      sync.Mutex
	closed  bool
	engines map[int]*cq.Engine // by shard id
	subs    map[*Subscription]struct{}
}

// AttachCQ builds the continuous-query layer over db, attaching an
// incremental evaluation engine to every shard. The CQ follows the
// topology from then on: shards created by splits get engines (and legs)
// automatically, shards drained by merges release theirs.
func AttachCQ(db *DB) (*CQ, error) {
	db.smu.RLock()
	defer db.smu.RUnlock()
	if db.closed {
		return nil, ErrClosed
	}
	c := &CQ{
		db:      db,
		slack:   db.shards[0].MaxSpeed() * db.shards[0].MaxUpdateInterval(),
		engines: make(map[int]*cq.Engine, len(db.shards)),
		subs:    make(map[*Subscription]struct{}),
	}
	for i, s := range db.shards {
		e, err := cq.Attach(s)
		if err != nil {
			for _, prev := range c.engines {
				prev.Close()
			}
			return nil, err
		}
		c.engines[db.metas[i].id] = e
	}
	db.cqRegister(c)
	return c, nil
}

// Close detaches every per-shard engine. Every live subscription's channel
// closes and its Err reports cq.ErrEngineClosed.
func (c *CQ) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	engines := make([]*cq.Engine, 0, len(c.engines))
	for _, e := range c.engines {
		engines = append(engines, e)
	}
	c.mu.Unlock()
	c.db.cqUnregister(c)
	for _, e := range engines {
		e.Close()
	}
}

// Stats returns the per-shard engines' counters summed — the sharded
// deployment's aggregate incremental-evaluation picture.
func (c *CQ) Stats() cq.Stats {
	c.mu.Lock()
	engines := make([]*cq.Engine, 0, len(c.engines))
	for _, e := range c.engines {
		engines = append(engines, e)
	}
	c.mu.Unlock()
	var out cq.Stats
	for _, e := range engines {
		st := e.Stats()
		out.Commits += st.Commits
		out.Evaluated += st.Evaluated
		out.Pruned += st.Pruned
		out.Naive += st.Naive
		out.Rescans += st.Rescans
		out.Deltas += st.Deltas
		out.Dropped += st.Dropped
		out.Live += st.Live
	}
	return out
}

// cqRegister / cqUnregister maintain the DB's set of attached CQ layers
// (the recipients of topology notifications).
func (db *DB) cqRegister(c *CQ) {
	db.cqMu.Lock()
	db.cqs[c] = struct{}{}
	db.cqMu.Unlock()
}

func (db *DB) cqUnregister(c *CQ) {
	db.cqMu.Lock()
	delete(db.cqs, c)
	db.cqMu.Unlock()
}

// cqSnapshot returns the attached CQ layers.
func (db *DB) cqSnapshot() []*CQ {
	db.cqMu.Lock()
	out := make([]*CQ, 0, len(db.cqs))
	for c := range db.cqs {
		out = append(out, c)
	}
	db.cqMu.Unlock()
	return out
}

// cqTopologyChanged tells every attached CQ that routes or covers just
// changed. Called under the write barrier (db.smu held exclusively), so
// no commit can land on any shard between the topology change and the
// CQ's re-fan-out — a new shard's legs register before the shard's first
// commit, which is what makes "no missed deltas across a split" hold.
func (db *DB) cqTopologyChanged() {
	for _, c := range db.cqSnapshot() {
		c.topologyChanged()
	}
}

// cqShardRemoving tells every attached CQ that the shard with the given
// id is about to be closed (merge finalization). Called under the write
// barrier; the shard is already drained, so its legs hold only residue
// the merger reconciles away.
func (db *DB) cqShardRemoving(id int) {
	for _, c := range db.cqSnapshot() {
		c.shardRemoving(id)
	}
}

// topologyChanged refreshes the engine set and every subscription's
// fan-out against the current topology. Caller holds db.smu exclusively.
func (c *CQ) topologyChanged() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	for i, sm := range c.db.metas {
		if _, ok := c.engines[sm.id]; !ok {
			e, err := cq.Attach(c.db.shards[i])
			if err != nil {
				// Attach fails only on a closing engine; any subscription
				// needing the shard dies with ErrEngineClosed soon anyway.
				continue
			}
			c.engines[sm.id] = e
		}
	}
	engines := make(map[int]*cq.Engine, len(c.engines))
	for id, e := range c.engines {
		engines[id] = e
	}
	subs := make([]*Subscription, 0, len(c.subs))
	for s := range c.subs {
		subs = append(subs, s)
	}
	c.mu.Unlock()

	for _, s := range subs {
		c.refan(s, engines)
	}
}

// shardRemoving retires every leg on the shard's engine and releases the
// engine. Caller holds db.smu exclusively.
func (c *CQ) shardRemoving(id int) {
	c.mu.Lock()
	e := c.engines[id]
	delete(c.engines, id)
	subs := make([]*Subscription, 0, len(c.subs))
	for s := range c.subs {
		subs = append(subs, s)
	}
	c.mu.Unlock()
	// Mark the legs retired BEFORE closing the engine: the close ends
	// each leg's stream, and the marker tells the merger to fold the leg
	// away instead of treating the end as a subscription failure.
	for _, s := range subs {
		s.markRetired(id)
	}
	if e != nil {
		e.Close()
	}
}

// refan injects legs for every shard the subscription must now cover but
// does not. Caller holds db.smu exclusively (so no commit races the
// initial-result capture) and must NOT hold c.mu (leg injection feeds
// the merger's mux, and the merger takes c.mu during shutdown).
func (c *CQ) refan(s *Subscription, engines map[int]*cq.Engine) {
	for _, id := range c.desiredShards(s) {
		if s.hasLeg(id) {
			continue
		}
		e := engines[id]
		if e == nil {
			continue
		}
		opt := cq.SubOptions{Buffer: s.legBuf, Overflow: cq.Cancel}
		l := &leg{id: id}
		if s.knn {
			ss, init, err := e.SubscribePkNN(s.issuer, s.x, s.y, s.k, s.t, opt)
			if err != nil {
				continue
			}
			l.sub = ss
			l.slice = make(map[UserID]Object, len(init))
			l.dist = make(map[UserID]float64, len(init))
			for _, nb := range init {
				l.slice[nb.Object.UID] = nb.Object
				l.dist[nb.Object.UID] = nb.Dist
			}
		} else {
			ss, init, err := e.SubscribeRange(s.issuer, s.region, s.t, opt)
			if err != nil {
				continue
			}
			l.sub = ss
			l.slice = make(map[UserID]Object, len(init))
			for _, o := range init {
				l.slice[o.UID] = o
			}
		}
		s.injectLeg(l)
	}
}

// desiredShards returns the ids of the shards the subscription must fan
// out to under the current topology: every shard for PkNN, the shards
// whose cover intersects the slack-enlarged region for a range
// subscription. Caller holds db.smu (either side).
func (c *CQ) desiredShards(s *Subscription) []int {
	if s.knn {
		ids := make([]int, len(c.db.metas))
		for i, sm := range c.db.metas {
			ids[i] = sm.id
		}
		return ids
	}
	var out []int
	ew := enlarge(s.region, c.slack)
	rect, ok := c.db.grid.RectOf(ew.MinX, ew.MinY, ew.MaxX, ew.MaxY)
	if !ok {
		return nil // the enlarged region misses the space entirely
	}
	for _, sm := range c.db.metas {
		if zcurve.HilbertRangeIntersectsRect(rect, sm.cover, c.db.grid.Order) {
			out = append(out, sm.id)
		}
	}
	return out
}

// leg is one shard's delta stream feeding a merged subscription, keyed
// by the shard's stable id. slice (and dist, for PkNN) is the result the
// shard last reported — mutated only by the merger goroutine once the
// leg is live. retired is set (under the subscription's legMu) when the
// shard is being merged away: the leg's end then folds it out of the
// merge instead of ending the subscription.
type leg struct {
	id      int
	sub     *cq.Subscription
	slice   map[UserID]Object
	dist    map[UserID]float64
	retired bool
}

// Subscription is a caller's handle on one merged standing query.
// Semantics mirror cq.Subscription: receive from Deltas, stop with Close,
// inspect Err once the channel closes.
type Subscription struct {
	c     *CQ
	out   chan cq.Delta
	stopC chan struct{}
	mux   chan legDelta
	wg    sync.WaitGroup

	// The registered query, kept to build new legs when the topology
	// changes.
	issuer UserID
	region Region // range form
	x, y   float64
	k      int // knn form
	t      float64
	knn    bool
	legBuf int
	policy cq.OverflowPolicy

	// legMu guards legs and the retired flags: appended by injection
	// (under the router's write barrier), read by the merger's recompute
	// loops and by shutdown.
	legMu sync.Mutex
	legs  []*leg

	mu      sync.Mutex
	err     error
	closing bool

	// Merger-goroutine state (single-threaded).
	emitted        map[UserID]Object
	emittedDist    map[UserID]float64 // knn only
	seq            uint64
	pendingDropped int
}

// Deltas returns the merged delta channel. It closes when the subscription
// ends — by Close, by CQ.Close, or by the overflow policy.
func (s *Subscription) Deltas() <-chan cq.Delta { return s.out }

// Err reports why the channel closed: nil after a plain Close,
// cq.ErrSlowConsumer, cq.ErrEngineClosed, or a per-shard evaluation error.
func (s *Subscription) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Close stops the subscription: the per-shard legs are unregistered, the
// merger drains, and the merged channel closes. Idempotent.
func (s *Subscription) Close() { s.shutdown(nil) }

// shutdown begins teardown, recording err as the terminal cause when one
// is given and none is set. Safe from any goroutine, any number of times.
func (s *Subscription) shutdown(err error) {
	s.mu.Lock()
	first := !s.closing
	if first {
		s.closing = true
		s.err = err
	}
	s.mu.Unlock()
	if !first {
		return
	}
	close(s.stopC)
	s.legMu.Lock()
	legs := append([]*leg(nil), s.legs...)
	s.legMu.Unlock()
	for _, l := range legs {
		l.sub.Close()
	}
	if s.c != nil {
		s.c.mu.Lock()
		delete(s.c.subs, s)
		s.c.mu.Unlock()
	}
}

func (s *Subscription) isClosing() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closing
}

// hasLeg reports whether the subscription already covers shard id.
func (s *Subscription) hasLeg(id int) bool {
	s.legMu.Lock()
	defer s.legMu.Unlock()
	for _, l := range s.legs {
		if l.id == id {
			return true
		}
	}
	return false
}

// markRetired flags the subscription's legs on shard id so their end is
// treated as a topology event, not a failure.
func (s *Subscription) markRetired(id int) {
	s.legMu.Lock()
	defer s.legMu.Unlock()
	for _, l := range s.legs {
		if l.id == id {
			l.retired = true
		}
	}
}

func (s *Subscription) isRetired(l *leg) bool {
	s.legMu.Lock()
	defer s.legMu.Unlock()
	return l.retired
}

// injectLeg adds a live leg to a running subscription: registered under
// the closing gate (so the sentinel still holds the WaitGroup open when
// the pump is added), announced to the merger through the mux — FIFO
// ensures the merger integrates the leg's initial slice before any of
// its deltas — and then pumped. Called with the router's write barrier
// held; the initial slice therefore reflects every commit before the
// topology change and none after.
func (s *Subscription) injectLeg(l *leg) {
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		l.sub.Close()
		return
	}
	s.wg.Add(1)
	s.legMu.Lock()
	s.legs = append(s.legs, l)
	s.legMu.Unlock()
	s.mu.Unlock()
	s.mux <- legDelta{leg: l, inject: true}
	go s.pump(l)
}

// shardBuffer sizes the per-shard legs from the caller's buffer choice.
// The legs run with the Cancel policy (a dropped leg delta would corrupt
// the merger's state), so they get several times the consumer's capacity:
// the merger drains them continuously and only ever stalls on its own
// bounded recompute, never on the consumer.
func shardBuffer(opt cq.SubOptions) int {
	b := opt.Buffer
	if b <= 0 {
		b = 256
	}
	if b < 1024 {
		b = 1024
	}
	return 4 * b
}

// consumerBuffer mirrors cq.SubOptions' zero-value default for the merged
// channel.
func consumerBuffer(opt cq.SubOptions) int {
	if opt.Buffer <= 0 {
		return 256
	}
	return opt.Buffer
}

// SubscribeRange registers issuer's PRQ over region r at evaluation time t
// as a merged continuous query and returns the current merged result.
// Registration holds the router's read barrier, so it is atomic with
// respect to cross-shard operations and topology changes; per-shard legs
// register atomically against their own shard's commits, and the merger
// reconciles anything a concurrent re-homing slips between the legs.
func (c *CQ) SubscribeRange(issuer UserID, r Region, t float64, opt cq.SubOptions) (*Subscription, []Object, error) {
	if !r.Valid() {
		return nil, nil, &peb.InvalidRegionError{Region: r}
	}
	c.db.smu.RLock()
	defer c.db.smu.RUnlock()
	if err := c.usable(); err != nil {
		return nil, nil, err
	}
	s := c.newSub(false, 0, opt)
	s.issuer, s.region, s.t = issuer, r, t
	for _, id := range c.desiredShards(s) {
		e := c.engineOf(id)
		if e == nil {
			continue
		}
		ss, init, err := e.SubscribeRange(issuer, r, t,
			cq.SubOptions{Buffer: s.legBuf, Overflow: cq.Cancel})
		if err != nil {
			s.abandonLegs()
			return nil, nil, err
		}
		slice := make(map[UserID]Object, len(init))
		for _, o := range init {
			slice[o.UID] = o
		}
		s.legs = append(s.legs, &leg{id: id, sub: ss, slice: slice})
	}
	initial := s.seedRange()
	c.adopt(s)
	s.start()
	return s, initial, nil
}

// SubscribePkNN registers issuer's PkNN centered at (x, y) with result
// size k at evaluation time t as a merged continuous query. Every shard
// gets a leg — any shard can hold a nearest neighbor — and the merger
// keeps the global (Dist, UID)-ordered top k of the per-shard results,
// exactly like the router's one-shot NearestNeighbors.
func (c *CQ) SubscribePkNN(issuer UserID, x, y float64, k int, t float64, opt cq.SubOptions) (*Subscription, []Neighbor, error) {
	c.db.smu.RLock()
	defer c.db.smu.RUnlock()
	if err := c.usable(); err != nil {
		return nil, nil, err
	}
	s := c.newSub(true, k, opt)
	s.issuer, s.x, s.y, s.t = issuer, x, y, t
	for _, id := range c.desiredShards(s) {
		e := c.engineOf(id)
		if e == nil {
			continue
		}
		ss, init, err := e.SubscribePkNN(issuer, x, y, k, t,
			cq.SubOptions{Buffer: s.legBuf, Overflow: cq.Cancel})
		if err != nil {
			s.abandonLegs()
			return nil, nil, err
		}
		slice := make(map[UserID]Object, len(init))
		dist := make(map[UserID]float64, len(init))
		for _, nb := range init {
			slice[nb.Object.UID] = nb.Object
			dist[nb.Object.UID] = nb.Dist
		}
		s.legs = append(s.legs, &leg{id: id, sub: ss, slice: slice, dist: dist})
	}
	initial := s.seedKNN()
	c.adopt(s)
	s.start()
	return s, initial, nil
}

// engineOf returns the engine for shard id (nil when detached).
func (c *CQ) engineOf(id int) *cq.Engine {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.engines[id]
}

// adopt records a fully-registered subscription for topology re-fan-out.
func (c *CQ) adopt(s *Subscription) {
	c.mu.Lock()
	c.subs[s] = struct{}{}
	c.mu.Unlock()
}

// usable reports whether the CQ and its DB still accept subscriptions.
// Caller holds db.smu (either side).
func (c *CQ) usable() error {
	if c.db.closed {
		return ErrClosed
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return cq.ErrEngineClosed
	}
	return nil
}

func (c *CQ) newSub(knn bool, k int, opt cq.SubOptions) *Subscription {
	return &Subscription{
		c:      c,
		out:    make(chan cq.Delta, consumerBuffer(opt)),
		stopC:  make(chan struct{}),
		mux:    make(chan legDelta, 128),
		knn:    knn,
		k:      k,
		policy: opt.Overflow,
		legBuf: shardBuffer(opt),
	}
}

// abandonLegs tears down the legs of a subscription that failed to
// register fully (no merger ever starts).
func (s *Subscription) abandonLegs() {
	for _, l := range s.legs {
		l.sub.Close()
	}
}

// seedRange computes the merged initial result from the per-leg initials
// and primes the emitted state with it: union, duplicates keep the newer
// state, sorted by user id — the same merge one-shot RangeQuery performs.
func (s *Subscription) seedRange() []Object {
	s.emitted = make(map[UserID]Object)
	for _, l := range s.legs {
		for uid, o := range l.slice {
			if prev, ok := s.emitted[uid]; !ok || o.T > prev.T {
				s.emitted[uid] = o
			}
		}
	}
	out := make([]Object, 0, len(s.emitted))
	for _, o := range s.emitted {
		out = append(out, o)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].UID < out[b].UID })
	return out
}

// seedKNN computes the merged initial top k and primes the emitted state.
func (s *Subscription) seedKNN() []Neighbor {
	res := s.mergedKNN()
	s.emitted = make(map[UserID]Object, len(res))
	s.emittedDist = make(map[UserID]float64, len(res))
	for _, nb := range res {
		s.emitted[nb.Object.UID] = nb.Object
		s.emittedDist[nb.Object.UID] = nb.Dist
	}
	return res
}

// mergedKNN derives the merged top k from the per-leg result slices:
// duplicates keep the newer state, order is (Dist, UID), truncated to k.
func (s *Subscription) mergedKNN() []Neighbor {
	best := make(map[UserID]Neighbor)
	s.legMu.Lock()
	for _, l := range s.legs {
		for uid, o := range l.slice {
			nb := Neighbor{Object: o, Dist: l.dist[uid]}
			if prev, ok := best[uid]; !ok || o.T > prev.Object.T {
				best[uid] = nb
			}
		}
	}
	s.legMu.Unlock()
	out := make([]Neighbor, 0, len(best))
	for _, nb := range best {
		out = append(out, nb)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Dist != out[b].Dist {
			return out[a].Dist < out[b].Dist
		}
		return out[a].Object.UID < out[b].Object.UID
	})
	if len(out) > s.k {
		out = out[:s.k]
	}
	return out
}

// legDelta is one delta tagged with the leg it arrived on; done marks a
// leg's channel closing, inject announces a freshly-injected leg whose
// initial slice must be folded into the merged result.
type legDelta struct {
	leg    *leg
	d      cq.Delta
	done   bool
	inject bool
}

// start launches the pumps and the merger. One pump per leg forwards that
// leg's deltas into the mux; a sentinel keeps the mux open until shutdown
// even when the fan-out is empty; the merger folds the mux into the
// consumer channel and closes it when every pump has drained.
func (s *Subscription) start() {
	for _, l := range s.legs {
		s.wg.Add(1)
		go s.pump(l)
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		<-s.stopC
	}()
	go func() {
		s.wg.Wait()
		close(s.mux)
	}()
	go s.merge()
}

// pump forwards one leg's deltas into the mux, then reports its end.
func (s *Subscription) pump(l *leg) {
	defer s.wg.Done()
	for d := range l.sub.Deltas() {
		s.mux <- legDelta{leg: l, d: d}
	}
	s.mux <- legDelta{leg: l, done: true}
}

// merge is the merger goroutine: it consumes tagged leg deltas until every
// pump exits, recomputing the merged result per event and emitting only
// real transitions. It never blocks on the consumer (the overflow policy
// rules there), so the pumps always drain and shutdown cannot wedge.
func (s *Subscription) merge() {
	defer close(s.out)
	for ld := range s.mux {
		switch {
		case ld.done:
			if s.isRetired(ld.leg) {
				// The shard was merged away. The leg is already drained of
				// meaningful deltas (migration committed its removals before
				// the barrier that retired it); fold the leg out and
				// reconcile any residue the streams had not delivered.
				s.seq++
				s.retireLeg(ld.leg)
				continue
			}
			// A leg ended outside a topology change. Caller-initiated Close
			// already recorded nil; anything else (engine close, slow
			// merger, evaluation error) terminates the merged subscription
			// with the leg's cause.
			if err := ld.leg.sub.Err(); err != nil {
				s.shutdown(err)
			} else if !s.isClosing() {
				s.shutdown(cq.ErrEngineClosed)
			}
		case ld.inject:
			if s.isClosing() {
				continue
			}
			s.seq++
			s.integrateLeg(ld.leg)
		default:
			if s.isClosing() {
				continue // draining; the consumer is gone
			}
			s.seq++
			if s.knn {
				s.applyKNN(ld.leg, ld.d)
			} else {
				s.applyRange(ld.leg, ld.d)
			}
		}
	}
}

// integrateLeg folds a freshly-injected leg's initial slice into the
// merged result, emitting whatever transitions it causes (normally none:
// a split's new shard starts empty, and objects a migration already
// moved carry their old timestamps, so the recompute finds no change).
func (s *Subscription) integrateLeg(l *leg) {
	if s.knn {
		s.emitKNNDiff()
		return
	}
	for uid := range l.slice {
		s.refreshUser(uid)
	}
}

// retireLeg removes a retired leg from the merge and reconciles the
// residue: any user whose only reporter was the dead leg leaves the
// merged result (their migrated copy, if any, re-enters via the target
// shard's leg — possibly already integrated, in which case nothing is
// emitted at all).
func (s *Subscription) retireLeg(l *leg) {
	s.legMu.Lock()
	for i, cur := range s.legs {
		if cur == l {
			s.legs = append(s.legs[:i], s.legs[i+1:]...)
			break
		}
	}
	s.legMu.Unlock()
	if s.isClosing() {
		return
	}
	if s.knn {
		s.emitKNNDiff()
		return
	}
	for uid := range l.slice {
		s.refreshUser(uid)
	}
}

// applyRange folds one leg delta into a range subscription: update the
// leg's slice and recompute the touched user's merged state across legs.
func (s *Subscription) applyRange(l *leg, d cq.Delta) {
	uid := d.Object.UID
	switch d.Kind {
	case cq.Leave:
		delete(l.slice, uid)
	default:
		l.slice[uid] = d.Object
	}
	s.refreshUser(uid)
}

// refreshUser recomputes one user's merged state across every live leg
// and emits iff the consumer-visible state changed.
func (s *Subscription) refreshUser(uid UserID) {
	var cur *Object
	s.legMu.Lock()
	for _, l := range s.legs {
		if o, ok := l.slice[uid]; ok && (cur == nil || o.T > cur.T) {
			o := o
			cur = &o
		}
	}
	s.legMu.Unlock()
	prev, was := s.emitted[uid]
	switch {
	case cur != nil && !was:
		s.emitted[uid] = *cur
		s.emit(cq.Delta{Kind: cq.Enter, Object: *cur, Seq: s.seq})
	case cur == nil && was:
		delete(s.emitted, uid)
		s.emit(cq.Delta{Kind: cq.Leave, Object: prev, Seq: s.seq})
	case cur != nil && was && *cur != prev:
		s.emitted[uid] = *cur
		s.emit(cq.Delta{Kind: cq.Update, Object: *cur, Seq: s.seq})
	}
}

// applyKNN folds one leg delta into a PkNN subscription: update the leg's
// slice, recompute the merged top k, and emit its diff.
func (s *Subscription) applyKNN(l *leg, d cq.Delta) {
	uid := d.Object.UID
	switch d.Kind {
	case cq.Leave:
		delete(l.slice, uid)
		delete(l.dist, uid)
	default:
		l.slice[uid] = d.Object
		l.dist[uid] = d.Dist
	}
	s.emitKNNDiff()
}

// emitKNNDiff recomputes the merged top k and emits its diff against the
// consumer's view — leaves first (sorted by user id), then enters and
// updates in (Dist, UID) order, all sharing one sequence tick.
func (s *Subscription) emitKNNDiff() {
	res := s.mergedKNN()
	newE := make(map[UserID]Object, len(res))
	newD := make(map[UserID]float64, len(res))
	for _, nb := range res {
		newE[nb.Object.UID] = nb.Object
		newD[nb.Object.UID] = nb.Dist
	}
	var gone []UserID
	for u := range s.emitted {
		if _, ok := newE[u]; !ok {
			gone = append(gone, u)
		}
	}
	sort.Slice(gone, func(a, b int) bool { return gone[a] < gone[b] })
	for _, u := range gone {
		s.emit(cq.Delta{Kind: cq.Leave, Object: s.emitted[u], Dist: s.emittedDist[u], Seq: s.seq})
	}
	for _, nb := range res {
		u := nb.Object.UID
		old, was := s.emitted[u]
		switch {
		case !was:
			s.emit(cq.Delta{Kind: cq.Enter, Object: nb.Object, Dist: nb.Dist, Seq: s.seq})
		case old != nb.Object || s.emittedDist[u] != nb.Dist:
			s.emit(cq.Delta{Kind: cq.Update, Object: nb.Object, Dist: nb.Dist, Seq: s.seq})
		}
	}
	s.emitted = newE
	s.emittedDist = newD
}

// emit delivers one merged delta under the caller's overflow policy,
// without ever blocking the merger (a blocked merger would back up every
// leg). Semantics mirror the single-DB engine's send.
func (s *Subscription) emit(d cq.Delta) {
	if s.isClosing() {
		return // a Cancel overflow mid-diff: swallow the rest
	}
	for {
		d.Dropped = s.pendingDropped
		select {
		case s.out <- d:
			s.pendingDropped = 0
			return
		default:
		}
		if s.policy == cq.Cancel {
			s.shutdown(cq.ErrSlowConsumer)
			return
		}
		select {
		case old := <-s.out:
			s.pendingDropped += 1 + old.Dropped
		default:
		}
	}
}
