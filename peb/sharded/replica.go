package sharded

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/peb"
)

// Follower reads. With Options.ReplicasPerShard > 0 the router attaches
// that many peb.Replica followers to every shard and serves RangeQuery
// and NearestNeighbors from them round-robin, keeping the shard primaries
// free for commits. Correctness is preserved by a read-your-writes check:
// the router remembers, per shard, the WAL sequence of the last commit it
// routed there (written), and a follower serves a read only when its
// applied horizon has reached that sequence — minus the configured
// StalenessBound. A lagging follower gets one synchronous CatchUp; if it
// still cannot reach the horizon (a tail fault, or an undecided
// cross-shard transaction stalling its apply queue), the read falls back
// to the primary, so follower reads are never wrong — at worst they are
// not offloaded.

// attachReplicas creates the per-shard follower pools. Called from Open
// after every shard has recovered.
func (db *DB) attachReplicas(n int) error {
	db.replicas = make([][]*peb.Replica, len(db.shards))
	db.rr = make([]atomic.Uint64, len(db.shards))
	db.written = make([]atomic.Uint64, len(db.shards))
	db.stalled = make([]atomic.Bool, len(db.shards))
	for i, s := range db.shards {
		pool := make([]*peb.Replica, 0, n)
		for k := 0; k < n; k++ {
			r, err := peb.NewReplica(s)
			if err != nil {
				db.closeReplicas()
				return fmt.Errorf("sharded: attach replica %d to shard %d: %w", k, i, err)
			}
			pool = append(pool, r)
		}
		db.replicas[i] = pool
		// Recovery replayed history the bootstrap copied; reads routed
		// before the first write must still honor it.
		db.written[i].Store(s.CommitSeq())
	}
	return nil
}

// closeReplicas detaches every follower (releasing their WAL retention
// floors). Best effort: a replica's close error does not mask another's.
func (db *DB) closeReplicas() error {
	var firstErr error
	for _, pool := range db.replicas {
		for _, r := range pool {
			if err := r.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	db.replicas = nil
	return firstErr
}

// noteWrite records that the router just committed on shard i: it feeds
// the shard's load meter (the hot-shard detector's signal) and, with
// replicas attached, raises the horizon follower reads on that shard
// must reach. The sequence is read back from the shard (commits from
// concurrent routed writes may have interleaved; observing a later one
// only strengthens the check), and the per-shard watermark only ever
// ratchets up.
func (db *DB) noteWrite(i int) {
	db.metas[i].load.noteCommit()
	if len(db.replicas) == 0 {
		return
	}
	seq := db.shards[i].CommitSeq()
	for {
		cur := db.written[i].Load()
		if seq <= cur || db.written[i].CompareAndSwap(cur, seq) {
			return
		}
	}
}

// reader picks the query target for shard i: the next follower in
// round-robin order when one is fresh enough, the primary otherwise.
// Either way the shard's load meter records the consultation.
func (db *DB) reader(i int) querier {
	db.metas[i].load.noteQuery()
	if len(db.replicas) == 0 {
		return db.shards[i]
	}
	pool := db.replicas[i]
	if len(pool) == 0 {
		return db.shards[i]
	}
	r := pool[db.rr[i].Add(1)%uint64(len(pool))]
	need := db.written[i].Load()
	bound := db.opts.StalenessBound
	if h := r.Horizon(); h+bound < need {
		// One synchronous catch-up: the follower drains everything the
		// primary had logged, so this fails only on a tail fault or an
		// undecided cross-shard transaction stalling the apply queue.
		if h, err := r.CatchUp(); err != nil || h+bound < need {
			db.primaryFallbacks.Add(1)
			// Record the stall once per transition, not per fallback: the
			// event log is for decisions, not per-read noise.
			if !db.stalled[i].Swap(true) {
				db.events.Record("replica.stall", "shard's followers cannot reach the read horizon",
					"shard", db.metas[i].id, "horizon", h, "need", need, "err", err)
			}
			return db.shards[i]
		}
	}
	if db.stalled[i].Swap(false) {
		db.events.Record("replica.catchup", "shard's followers serve reads again",
			"shard", db.metas[i].id, "need", need)
	}
	db.followerReads.Add(1)
	return r
}

// FollowerHorizons reports each shard's follower applied horizons, in
// shard order (empty inner slices without replicas) — the observability
// hook for replication lag.
func (db *DB) FollowerHorizons() [][]uint64 {
	db.smu.RLock()
	defer db.smu.RUnlock()
	out := make([][]uint64, len(db.shards))
	for i, pool := range db.replicas {
		hs := make([]uint64, len(pool))
		for k, r := range pool {
			hs[k] = r.Horizon()
		}
		out[i] = hs
	}
	return out
}

// LagReading is one follower's apply lag at a sampled instant: the raw
// inputs (the shard's committed sequence and the follower's applied
// horizon) alongside the derived lag, so a monitor comparing readings
// over time can tell a stalled follower (Horizon frozen) from a merely
// busy one (Horizon advancing behind a faster CommitSeq).
type LagReading struct {
	// Lag is CommitSeq − Horizon in WAL records, clamped at zero (the
	// horizon is sampled after the commit sequence, so a fast follower
	// can appear ahead).
	Lag uint64
	// Horizon is the follower's applied WAL sequence; CommitSeq is the
	// shard primary's committed sequence at sampling time.
	Horizon   uint64
	CommitSeq uint64
	// SampledAt timestamps the reading.
	SampledAt time.Time
}

// FollowerLagReadings reports each follower's apply lag as a timestamped
// reading, in shard-slot order (empty inner slices without replicas).
func (db *DB) FollowerLagReadings() [][]LagReading {
	db.smu.RLock()
	defer db.smu.RUnlock()
	_, out := db.followerLagsLocked()
	return out
}

// followerLagsByShard is FollowerLagReadings plus the parallel stable
// shard ids, for callers labeling series by shard identity.
func (db *DB) followerLagsByShard() ([]int, [][]LagReading) {
	db.smu.RLock()
	defer db.smu.RUnlock()
	return db.followerLagsLocked()
}

func (db *DB) followerLagsLocked() ([]int, [][]LagReading) {
	ids := make([]int, len(db.shards))
	for i := range db.shards {
		ids[i] = db.metas[i].id
	}
	out := make([][]LagReading, len(db.shards))
	now := db.now()
	for i, pool := range db.replicas {
		seq := db.shards[i].CommitSeq()
		ls := make([]LagReading, len(pool))
		for k, r := range pool {
			lr := LagReading{Horizon: r.Horizon(), CommitSeq: seq, SampledAt: now}
			if lr.Horizon < seq {
				lr.Lag = seq - lr.Horizon
			}
			ls[k] = lr
		}
		out[i] = ls
	}
	return ids, out
}

// FollowerLags reports each follower's apply lag in WAL records. Shape
// matches FollowerHorizons. It is the legacy scalar view of
// FollowerLagReadings, kept for callers that only chart the lag.
func (db *DB) FollowerLags() [][]uint64 {
	_, readings := db.followerLagsByShard()
	out := make([][]uint64, len(readings))
	for i, pool := range readings {
		ls := make([]uint64, len(pool))
		for k, lr := range pool {
			ls[k] = lr.Lag
		}
		out[i] = ls
	}
	return out
}
