package sharded

import (
	"fmt"
	"sync/atomic"

	"repro/peb"
)

// Follower reads. With Options.ReplicasPerShard > 0 the router attaches
// that many peb.Replica followers to every shard and serves RangeQuery
// and NearestNeighbors from them round-robin, keeping the shard primaries
// free for commits. Correctness is preserved by a read-your-writes check:
// the router remembers, per shard, the WAL sequence of the last commit it
// routed there (written), and a follower serves a read only when its
// applied horizon has reached that sequence — minus the configured
// StalenessBound. A lagging follower gets one synchronous CatchUp; if it
// still cannot reach the horizon (a tail fault, or an undecided
// cross-shard transaction stalling its apply queue), the read falls back
// to the primary, so follower reads are never wrong — at worst they are
// not offloaded.

// attachReplicas creates the per-shard follower pools. Called from Open
// after every shard has recovered.
func (db *DB) attachReplicas(n int) error {
	db.replicas = make([][]*peb.Replica, len(db.shards))
	db.rr = make([]atomic.Uint64, len(db.shards))
	db.written = make([]atomic.Uint64, len(db.shards))
	for i, s := range db.shards {
		pool := make([]*peb.Replica, 0, n)
		for k := 0; k < n; k++ {
			r, err := peb.NewReplica(s)
			if err != nil {
				db.closeReplicas()
				return fmt.Errorf("sharded: attach replica %d to shard %d: %w", k, i, err)
			}
			pool = append(pool, r)
		}
		db.replicas[i] = pool
		// Recovery replayed history the bootstrap copied; reads routed
		// before the first write must still honor it.
		db.written[i].Store(s.CommitSeq())
	}
	return nil
}

// closeReplicas detaches every follower (releasing their WAL retention
// floors). Best effort: a replica's close error does not mask another's.
func (db *DB) closeReplicas() error {
	var firstErr error
	for _, pool := range db.replicas {
		for _, r := range pool {
			if err := r.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	db.replicas = nil
	return firstErr
}

// noteWrite records that the router just committed on shard i: it feeds
// the shard's load meter (the hot-shard detector's signal) and, with
// replicas attached, raises the horizon follower reads on that shard
// must reach. The sequence is read back from the shard (commits from
// concurrent routed writes may have interleaved; observing a later one
// only strengthens the check), and the per-shard watermark only ever
// ratchets up.
func (db *DB) noteWrite(i int) {
	db.metas[i].load.noteCommit()
	if len(db.replicas) == 0 {
		return
	}
	seq := db.shards[i].CommitSeq()
	for {
		cur := db.written[i].Load()
		if seq <= cur || db.written[i].CompareAndSwap(cur, seq) {
			return
		}
	}
}

// reader picks the query target for shard i: the next follower in
// round-robin order when one is fresh enough, the primary otherwise.
// Either way the shard's load meter records the consultation.
func (db *DB) reader(i int) querier {
	db.metas[i].load.noteQuery()
	if len(db.replicas) == 0 {
		return db.shards[i]
	}
	pool := db.replicas[i]
	if len(pool) == 0 {
		return db.shards[i]
	}
	r := pool[db.rr[i].Add(1)%uint64(len(pool))]
	need := db.written[i].Load()
	bound := db.opts.StalenessBound
	if h := r.Horizon(); h+bound < need {
		// One synchronous catch-up: the follower drains everything the
		// primary had logged, so this fails only on a tail fault or an
		// undecided cross-shard transaction stalling the apply queue.
		if h, err := r.CatchUp(); err != nil || h+bound < need {
			db.primaryFallbacks.Add(1)
			return db.shards[i]
		}
	}
	db.followerReads.Add(1)
	return r
}

// FollowerHorizons reports each shard's follower applied horizons, in
// shard order (empty inner slices without replicas) — the observability
// hook for replication lag.
func (db *DB) FollowerHorizons() [][]uint64 {
	db.smu.RLock()
	defer db.smu.RUnlock()
	out := make([][]uint64, len(db.shards))
	for i, pool := range db.replicas {
		hs := make([]uint64, len(pool))
		for k, r := range pool {
			hs[k] = r.Horizon()
		}
		out[i] = hs
	}
	return out
}

// FollowerLags reports each follower's apply lag in WAL records — the
// shard's latest committed sequence minus the follower's applied horizon,
// clamped at zero (the horizon is sampled after the commit sequence, so a
// fast follower can appear ahead). Shape matches FollowerHorizons.
func (db *DB) FollowerLags() [][]uint64 {
	db.smu.RLock()
	defer db.smu.RUnlock()
	out := make([][]uint64, len(db.shards))
	for i, pool := range db.replicas {
		seq := db.shards[i].CommitSeq()
		ls := make([]uint64, len(pool))
		for k, r := range pool {
			if h := r.Horizon(); h < seq {
				ls[k] = seq - h
			}
		}
		out[i] = ls
	}
	return out
}
