package sharded

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/store"
	"repro/internal/zcurve"
	"repro/peb"
)

// Online resharding. A hot shard serializes every commit to its range
// behind one write lock and one log; splitting the range in two puts the
// halves on independent locks, logs, and checkpoint pipelines. The split
// (and its inverse, the merge) happens while the database serves:
//
//  1. Route flip (one write-barrier acquisition). For a split: sample the
//     source's population, pick the split point at the population median
//     of its route (zcurve.SplitByDensity), create the new shard's engine,
//     seed it with the broadcast policy state, and persist a manifest in
//     which the source routes only the lower half, the new shard routes
//     the upper half, and a pendingOp records the migration. The manifest
//     rename is the atomic commit point: before it the split does not
//     exist; after it the split always completes, even across a crash.
//     The source's COVER still spans both halves, so queries keep finding
//     the not-yet-moved objects; only new writes route to the new shard.
//     For a merge: the source's route is absorbed by an adjacent
//     neighbor (covers widen accordingly) and the source stops routing.
//  2. Migration. Objects whose position no longer routes to the shard
//     holding them are moved in bounded batches through the same
//     prepare/commit machinery as a cross-shard user batch (commitParts),
//     releasing the barrier between batches so reads and writes keep
//     serving. The route flip already happened, so no new object joins
//     the moving set and the loop terminates.
//  3. Finalize (one more barrier acquisition). Covers contract to routes
//     (split), or the drained source is dropped from the manifest, closed,
//     and its files deleted (merge). Another manifest write commits it.
//
// A crash anywhere in the middle leaves the manifest either without the
// pendingOp (the change never happened) or with it (recovery rolls the
// migration forward before serving — Open calls completePendingLocked).
// Object moves themselves are crash-atomic through the 2PC decision log,
// so no fault point loses or duplicates an object.
//
// Live CQ subscriptions are notified under the same barrier as each route
// flip (cqTopologyChanged / cqShardRemoving), so standing queries follow
// the topology without missing a delta — see cq.go.

// migrateBatch bounds how many objects one migration step moves (and so
// how long the write barrier is held at a stretch).
const migrateBatch = 256

// AutoReshardPolicy configures the background maintainer that keeps the
// topology matched to the observed load. The zero value disables it.
type AutoReshardPolicy struct {
	// Interval is how often the maintainer examines the per-shard EWMA
	// commit rates; zero or negative disables automatic resharding
	// (explicit Split and Merge still work).
	Interval time.Duration
	// SplitCommitRate is the per-second commit rate above which a shard is
	// considered hot and split (subject to MaxShards). Zero disables
	// automatic splits.
	SplitCommitRate float64
	// MergeCommitRate is the per-second commit rate below which two
	// route-adjacent shards are considered cold and merged (subject to
	// MinShards). Zero disables automatic merges.
	MergeCommitRate float64
	// MaxShards caps automatic splits (default 64); MinShards floors
	// automatic merges (default 1).
	MaxShards int
	MinShards int
}

func (p AutoReshardPolicy) validate() error {
	if p.Interval <= 0 {
		return nil // disabled; the other fields are ignored
	}
	if p.SplitCommitRate < 0 || p.MergeCommitRate < 0 {
		return fmt.Errorf("%w: AutoReshard rates must be non-negative", peb.ErrBadOptions)
	}
	if p.SplitCommitRate > 0 && p.MergeCommitRate >= p.SplitCommitRate {
		return fmt.Errorf("%w: AutoReshard.MergeCommitRate %g must stay below SplitCommitRate %g (or the topology oscillates)",
			peb.ErrBadOptions, p.MergeCommitRate, p.SplitCommitRate)
	}
	if p.MaxShards < 0 || p.MinShards < 0 {
		return fmt.Errorf("%w: AutoReshard shard bounds must be non-negative", peb.ErrBadOptions)
	}
	if p.MaxShards > 0 && p.MinShards > p.MaxShards {
		return fmt.Errorf("%w: AutoReshard.MinShards %d exceeds MaxShards %d", peb.ErrBadOptions, p.MinShards, p.MaxShards)
	}
	return nil
}

func (p AutoReshardPolicy) maxShards() int {
	if p.MaxShards <= 0 {
		return 64
	}
	return p.MaxShards
}

func (p AutoReshardPolicy) minShards() int {
	if p.MinShards <= 0 {
		return 1
	}
	return p.MinShards
}

// Split divides the identified shard's Hilbert range in two at its
// population median, migrates the upper half's objects to a freshly
// created shard, and contracts the source — all online: reads and writes
// keep serving throughout (queries consult both halves until the
// migration drains). Split returns once the topology change is complete
// and durable. It fails if another split or merge is in flight, if
// replicas are attached, or if the shard's range is too narrow to divide.
func (db *DB) Split(id int) error {
	if err := db.beginSplit(id); err != nil {
		return err
	}
	return db.finishPending()
}

// Merge drains the identified shard into a route-adjacent neighbor and
// removes it, reclaiming its directory — the inverse of Split, with the
// same online guarantees. The neighbor's range absorbs the source's.
func (db *DB) Merge(id int) error {
	if err := db.beginMerge(id); err != nil {
		return err
	}
	return db.finishPending()
}

// beginSplit performs a split's route flip: everything up to and including
// the manifest write that makes the split exist.
func (db *DB) beginSplit(id int) error {
	db.smu.Lock()
	defer db.smu.Unlock()
	if db.closed {
		return ErrClosed
	}
	if db.pending != nil {
		return fmt.Errorf("sharded: split shard %d: a %s is already in flight", id, db.pending.Kind)
	}
	if len(db.replicas) > 0 {
		return fmt.Errorf("sharded: split is not coordinated with attached replicas")
	}
	slot, ok := db.slotOf(id)
	if !ok {
		return fmt.Errorf("sharded: split: no shard %d", id)
	}
	sm := db.metas[slot]
	if sm.noRoute {
		return fmt.Errorf("sharded: split: shard %d is being merged away", id)
	}

	// Pick the split point where the population actually sits: the median
	// Hilbert value of the source's objects, so each half inherits about
	// half the load even under a skewed distribution. An empty shard
	// splits at the geometric midpoint.
	objs, err := db.shards[slot].Objects()
	if err != nil {
		return fmt.Errorf("sharded: split: sample shard %d: %w", id, err)
	}
	values := make([]uint64, len(objs))
	for i, o := range objs {
		values[i] = db.grid.HilbertValue(o.X, o.Y)
	}
	at, ok := zcurve.SplitByDensity(sm.route, values)
	if !ok {
		return fmt.Errorf("sharded: split: shard %d route %v is too narrow to divide", id, sm.route)
	}

	newID := db.nextID
	eng, err := db.newShardEngine(newID, db.shards[slot])
	if err != nil {
		return fmt.Errorf("sharded: split: create shard %d: %w", newID, err)
	}
	upper := zcurve.Interval{Lo: at + 1, Hi: sm.route.Hi}

	// Stage the flipped topology, then persist: the manifest rename is the
	// split's commit point. On failure, revert the staging and discard the
	// engine — nothing observable happened.
	db.metas[slot].route = zcurve.Interval{Lo: sm.route.Lo, Hi: at}
	db.metas = append(db.metas, shardMeta{id: newID, route: upper, cover: upper, load: newLoadMeter()})
	db.shards = append(db.shards, eng)
	db.nextID++
	db.epoch++
	db.pending = &pendingOp{Kind: pendingSplit, Src: id, Dst: newID, SplitAt: at}
	if err := db.writeManifest(); err != nil {
		db.metas[slot].route = sm.route
		db.metas = db.metas[:len(db.metas)-1]
		db.shards = db.shards[:len(db.shards)-1]
		db.nextID--
		db.epoch--
		db.pending = nil
		eng.Close()
		db.removeShardFiles(newID)
		return err
	}
	db.rebuildRoutes()
	db.cqTopologyChanged()
	return nil
}

// beginMerge performs a merge's route flip: the source stops routing, a
// route-adjacent neighbor absorbs its range, and the manifest write makes
// the merge exist.
func (db *DB) beginMerge(id int) error {
	db.smu.Lock()
	defer db.smu.Unlock()
	if db.closed {
		return ErrClosed
	}
	if db.pending != nil {
		return fmt.Errorf("sharded: merge shard %d: a %s is already in flight", id, db.pending.Kind)
	}
	if len(db.replicas) > 0 {
		return fmt.Errorf("sharded: merge is not coordinated with attached replicas")
	}
	if len(db.metas) < 2 {
		return fmt.Errorf("sharded: merge: only one shard left")
	}
	srcSlot, ok := db.slotOf(id)
	if !ok {
		return fmt.Errorf("sharded: merge: no shard %d", id)
	}
	src := db.metas[srcSlot]
	if src.noRoute {
		return fmt.Errorf("sharded: merge: shard %d is already being merged away", id)
	}

	// The absorbing neighbor must be route-adjacent so the union is one
	// contiguous interval: prefer the right neighbor, fall back to the
	// left (one of the two exists for every shard but a sole survivor).
	dstSlot := -1
	for i, sm := range db.metas {
		if sm.noRoute || i == srcSlot {
			continue
		}
		if sm.route.Lo == src.route.Hi+1 {
			dstSlot = i
			break
		}
		if sm.route.Hi+1 == src.route.Lo && dstSlot < 0 {
			dstSlot = i
		}
	}
	if dstSlot < 0 {
		return fmt.Errorf("sharded: merge: shard %d has no route-adjacent neighbor", id)
	}
	dst := db.metas[dstSlot]
	union := zcurve.Interval{Lo: minU64(src.route.Lo, dst.route.Lo), Hi: maxU64(src.route.Hi, dst.route.Hi)}

	db.metas[srcSlot].noRoute = true
	db.metas[dstSlot].route = union
	db.metas[dstSlot].cover = union
	db.epoch++
	db.pending = &pendingOp{Kind: pendingMerge, Src: src.id, Dst: dst.id}
	if err := db.writeManifest(); err != nil {
		db.metas[srcSlot].noRoute = false
		db.metas[dstSlot].route = dst.route
		db.metas[dstSlot].cover = dst.cover
		db.epoch--
		db.pending = nil
		return err
	}
	db.rebuildRoutes()
	// The destination's cover just widened over the source's range: legs
	// for it are injected into every subscription watching that range
	// BEFORE any commit can land there, so the migrated objects' arrival
	// deltas are never missed.
	db.cqTopologyChanged()
	return nil
}

// newShardEngine creates a fresh engine for a split's new shard, seeded
// with the broadcast policy state (copied from the split source, where it
// is identical to every other shard's). The policy seed is logged and
// synced inside the new engine, so it survives any later crash once the
// split's manifest commits.
func (db *DB) newShardEngine(id int, src *peb.DB) (*peb.DB, error) {
	po := db.opts.DB
	po.FS = db.fs
	po.MetricsLabel = shardLabel(id)
	if db.opts.Dir != "" {
		dir := shardDir(db.opts.Dir, id)
		if _, isOS := db.fs.(store.OSFS); isOS {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return nil, err
			}
		}
		// A crash between engine creation and the manifest write orphans
		// the directory; ids are never reused until nextID wraps back here
		// through a NEW allocation, so stale files from such an attempt
		// must be swept before the engine initializes over them.
		db.removeShardFiles(id)
		po.Path = filepath.Join(dir, "peb.idx")
	}
	eng, err := peb.Open(po)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := src.SavePolicies(&buf); err != nil {
		eng.Close()
		return nil, fmt.Errorf("save policy state: %w", err)
	}
	if err := eng.LoadPolicies(&buf); err != nil {
		eng.Close()
		return nil, fmt.Errorf("seed policy state: %w", err)
	}
	return eng, nil
}

// removeShardFiles best-effort deletes every file in a shard's directory
// (merge reclamation, or sweeping a crash-orphaned split target).
func (db *DB) removeShardFiles(id int) {
	if db.opts.Dir == "" {
		return
	}
	names, err := db.fs.ListDir(shardDir(db.opts.Dir, id))
	if err != nil {
		return
	}
	for _, name := range names {
		_ = db.fs.Remove(name)
	}
}

// finishPending drives the in-flight migration to completion in bounded
// batches, releasing the barrier between batches so reads and writes keep
// serving — the online half of Split and Merge.
func (db *DB) finishPending() error {
	for {
		db.smu.Lock()
		if db.closed {
			db.smu.Unlock()
			return ErrClosed
		}
		if db.pending == nil {
			db.smu.Unlock()
			return nil
		}
		moved, err := db.migrateStepLocked()
		if err == nil && moved == 0 {
			err = db.finalizePendingLocked()
		}
		db.smu.Unlock()
		if err != nil {
			return err
		}
	}
}

// completePendingLocked rolls a recovered in-flight migration forward to
// completion. Called from Open before the DB is shared, so no locking.
func (db *DB) completePendingLocked() error {
	for db.pending != nil {
		moved, err := db.migrateStepLocked()
		if err != nil {
			return err
		}
		if moved == 0 {
			if err := db.finalizePendingLocked(); err != nil {
				return err
			}
		}
	}
	return nil
}

// migrateStepLocked moves one bounded batch of objects out of the pending
// operation's source shard, through the same atomic cross-shard commit as
// a user batch. It returns how many objects moved; zero means the source
// is drained. Caller holds the write barrier.
func (db *DB) migrateStepLocked() (int, error) {
	p := db.pending
	srcSlot, ok := db.slotOf(p.Src)
	if !ok {
		return 0, fmt.Errorf("sharded: migrate: source shard %d vanished", p.Src)
	}
	objs, err := db.shards[srcSlot].Objects()
	if err != nil {
		return 0, fmt.Errorf("sharded: migrate: enumerate shard %d: %w", p.Src, err)
	}
	subs := make([]*peb.Batch, len(db.shards))
	for i := range subs {
		subs[i] = db.shards[i].NewBatch()
	}
	delta := make(map[UserID]int)
	moved := 0
	for _, o := range objs {
		target := db.shardOf(o.X, o.Y)
		if target == srcSlot {
			continue // still routed here (a split source keeps its lower half)
		}
		subs[target].Upsert(o)
		subs[srcSlot].Remove(o.UID)
		delta[o.UID] = target
		moved++
		if moved >= migrateBatch {
			break
		}
	}
	if moved == 0 {
		return 0, nil
	}
	var parts []int
	for i, sub := range subs {
		if sub.Len() > 0 {
			parts = append(parts, i)
		}
	}
	committed, err := db.commitParts(parts, subs)
	if committed {
		db.applyOwnerDelta(delta)
	}
	if err != nil {
		return moved, fmt.Errorf("sharded: migrate batch out of shard %d: %w", p.Src, err)
	}
	return moved, nil
}

// finalizePendingLocked commits the end of a drained migration: covers
// contract (split) or the source shard is dropped (merge). The manifest
// write is, as always, the durable commit point — for a merge it happens
// BEFORE the in-memory removal, because closing the source engine and
// deleting its files cannot be rolled back. Caller holds the write
// barrier.
func (db *DB) finalizePendingLocked() error {
	p := db.pending
	switch p.Kind {
	case pendingSplit:
		slot, ok := db.slotOf(p.Src)
		if !ok {
			return fmt.Errorf("sharded: finalize split: shard %d vanished", p.Src)
		}
		oldCover := db.metas[slot].cover
		db.metas[slot].cover = db.metas[slot].route
		db.pending = nil
		db.epoch++
		if err := db.writeManifest(); err != nil {
			db.metas[slot].cover = oldCover
			db.pending = p
			db.epoch--
			return err
		}
		db.rebuildRoutes()
		db.splits.Add(1)
		db.cqTopologyChanged()
		return nil

	case pendingMerge:
		srcSlot, ok := db.slotOf(p.Src)
		if !ok {
			return fmt.Errorf("sharded: finalize merge: shard %d vanished", p.Src)
		}
		dstSlot, ok := db.slotOf(p.Dst)
		if !ok {
			return fmt.Errorf("sharded: finalize merge: shard %d vanished", p.Dst)
		}
		// Persist the post-merge topology first; only then mutate memory.
		ts := topoState{epoch: db.epoch + 1, nextID: db.nextID}
		for i, sm := range db.metas {
			if i == srcSlot {
				continue
			}
			if i == dstSlot {
				sm.cover = sm.route
			}
			ts.metas = append(ts.metas, sm)
		}
		if err := db.persistTopo(ts); err != nil {
			return err
		}
		// Retire the source's CQ legs before its engine closes, so the
		// merger folds them away instead of treating the close as failure.
		db.cqShardRemoving(p.Src)
		src := db.shards[srcSlot]
		db.metas[dstSlot].cover = db.metas[dstSlot].route
		db.shards = append(db.shards[:srcSlot], db.shards[srcSlot+1:]...)
		db.metas = append(db.metas[:srcSlot], db.metas[srcSlot+1:]...)
		db.epoch++
		db.pending = nil
		// The source was drained, so no user routes to it; owners in later
		// slots shift down by one.
		db.ownMu.Lock()
		for uid, s := range db.owner {
			if s > srcSlot {
				db.owner[uid] = s - 1
			}
		}
		db.ownMu.Unlock()
		if err := src.Close(); err != nil {
			// The merge is durably committed; a close error only leaks the
			// source's resources until process exit.
			_ = err
		}
		db.removeShardFiles(p.Src)
		db.rebuildRoutes()
		db.merges.Add(1)
		db.cqTopologyChanged()
		return nil
	}
	return fmt.Errorf("sharded: unknown pending operation %q", p.Kind)
}

// startMaintainer launches the AutoReshard loop (no-op when disabled).
func (db *DB) startMaintainer() {
	if db.opts.AutoReshard.Interval <= 0 {
		return
	}
	db.reshardStop = make(chan struct{})
	db.reshardDone = make(chan struct{})
	go db.maintainLoop()
}

// stopMaintainer stops the AutoReshard loop and waits for it to exit;
// idempotent, called by Close before it takes the barrier (the maintainer
// acquires the barrier itself).
func (db *DB) stopMaintainer() {
	if db.reshardStop == nil {
		return
	}
	db.reshardOnce.Do(func() { close(db.reshardStop) })
	<-db.reshardDone
}

func (db *DB) maintainLoop() {
	defer close(db.reshardDone)
	t := time.NewTicker(db.opts.AutoReshard.Interval)
	defer t.Stop()
	for {
		select {
		case <-db.reshardStop:
			return
		case <-t.C:
			db.reshardTick()
		}
	}
}

// reshardTick examines the EWMA commit rates and performs at most one
// topology change: split the hottest shard past the split threshold, or
// else merge the coldest adjacent pair under the merge threshold. Errors
// are swallowed — the maintainer is best-effort and the next tick retries
// (a shard too narrow to split simply stays hot).
func (db *DB) reshardTick() {
	pol := db.opts.AutoReshard
	st := db.Stats()
	if len(st.Shards) == 0 {
		return // closed (or closing)
	}
	hot, hotRate := -1, 0.0
	for _, ss := range st.Shards {
		if ss.NoRoute {
			return // a migration is still in flight; let it drain
		}
		if ss.CommitRate > hotRate {
			hot, hotRate = ss.ID, ss.CommitRate
		}
	}
	if pol.SplitCommitRate > 0 && hot >= 0 &&
		hotRate >= pol.SplitCommitRate && len(st.Shards) < pol.maxShards() {
		err := db.Split(hot)
		db.events.Record("reshard.split", "hot shard split by the AutoReshard maintainer",
			"shard", hot, "commit_rate", hotRate, "threshold", pol.SplitCommitRate,
			"shards", len(st.Shards), "err", err)
		return
	}
	if pol.MergeCommitRate <= 0 || len(st.Shards) <= pol.minShards() {
		return
	}
	// Coldest route-adjacent pair, both under the merge threshold.
	byRoute := append([]ShardStats(nil), st.Shards...)
	sort.Slice(byRoute, func(a, b int) bool { return byRoute[a].Route.Lo < byRoute[b].Route.Lo })
	bestID, bestRate := -1, 0.0
	for i := 0; i+1 < len(byRoute); i++ {
		a, b := byRoute[i], byRoute[i+1]
		if a.CommitRate > pol.MergeCommitRate || b.CommitRate > pol.MergeCommitRate {
			continue
		}
		if pair := a.CommitRate + b.CommitRate; bestID < 0 || pair < bestRate {
			bestID, bestRate = a.ID, pair
		}
	}
	if bestID >= 0 {
		err := db.Merge(bestID)
		db.events.Record("reshard.merge", "cold adjacent shards merged by the AutoReshard maintainer",
			"shard", bestID, "pair_rate", bestRate, "threshold", pol.MergeCommitRate,
			"shards", len(st.Shards), "err", err)
	}
}

func minU64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
