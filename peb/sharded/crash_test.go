package sharded

import (
	"fmt"
	"testing"

	"repro/internal/store"
	"repro/peb"
)

// The cross-shard crash suite: a fault point sweeps over every filesystem
// operation of a run that commits a batch spanning all shards, the
// machine "loses power" there, and recovery must restore an
// all-or-nothing verdict — the batch's users are present in full or not
// at all, on both the pessimistic (unsynced writes lost) and optimistic
// (unsynced writes survived) reboot models.

// crashShardedOpts builds the options for the crash runs.
func crashShardedOpts(fs store.VFS) Options {
	return Options{
		Shards: 4,
		Dir:    "root",
		DB: peb.Options{
			Durability: peb.DurabilitySync,
			FS:         fs,
		},
	}
}

// Positions in the four quadrants of the default 1000×1000 space — with
// four shards, the Hilbert split assigns one quadrant per shard, so the
// transaction users span every shard.
var quadrant = [4][2]float64{{250, 250}, {250, 750}, {750, 750}, {750, 250}}

const txnUserBase = 100 // transaction users: 101..104

// crashShardedRun is the workload the fault point sweeps over: seed four
// users (one per shard), then commit one cross-shard batch that adds four
// more and moves a seed user across shards. All errors are ignored — the
// filesystem is dying mid-run by design.
func crashShardedRun(fs store.VFS) {
	db, err := Open(crashShardedOpts(fs))
	if err != nil {
		return
	}
	defer db.Close()
	for i, q := range quadrant {
		if err := db.Upsert(Object{UID: UserID(i + 1), X: q[0], Y: q[1], T: 1}); err != nil {
			return
		}
	}
	b := db.NewBatch()
	for i, q := range quadrant {
		b.Upsert(Object{UID: UserID(txnUserBase + i + 1), X: q[0] + 10, Y: q[1] + 10, T: 2})
	}
	// Move seed user 1 from quadrant 0 to quadrant 2 inside the same
	// transaction: its eviction from the old shard must be atomic with the
	// insert into the new one.
	b.Upsert(Object{UID: 1, X: quadrant[2][0] - 20, Y: quadrant[2][1] - 20, T: 2})
	_ = db.Apply(b)
}

// checkAllOrNothing asserts the recovered state is consistent: the four
// transaction users are all present or all absent; the moved user exists
// exactly once, at either its old or new position consistent with the
// batch verdict.
func checkAllOrNothing(t *testing.T, db *DB, label string) {
	t.Helper()
	present := 0
	for i := range quadrant {
		if _, ok, err := db.Lookup(UserID(txnUserBase + i + 1)); err != nil {
			t.Fatalf("%s: lookup: %v", label, err)
		} else if ok {
			present++
		}
	}
	if present != 0 && present != len(quadrant) {
		t.Fatalf("%s: cross-shard batch recovered partially: %d of %d users", label, present, len(quadrant))
	}
	committed := present == len(quadrant)

	// The moved user: exactly one copy, and at the position matching the
	// batch verdict (seed commits may themselves have been lost before
	// they were acknowledged, so absence is legal only while the batch is
	// absent too).
	o, ok, err := db.Lookup(1)
	if err != nil {
		t.Fatalf("%s: lookup moved user: %v", label, err)
	}
	switch {
	case committed && (!ok || o.T != 2):
		t.Fatalf("%s: batch committed but moved user is %v (ok=%v)", label, o, ok)
	case !committed && ok && o.T == 2:
		t.Fatalf("%s: batch aborted but moved user carries its update", label)
	}
}

func TestShardedCrashMidCrossShardCommit(t *testing.T) {
	golden := store.NewCrashFS()
	crashShardedRun(golden)
	total := golden.Ops()
	if total < 20 {
		t.Fatalf("suspiciously few fault points: %d", total)
	}
	// Sanity: the golden run committed the batch.
	{
		db, err := Open(crashShardedOpts(golden))
		if err != nil {
			t.Fatalf("golden reopen: %v", err)
		}
		if db.Size() != 8 {
			t.Fatalf("golden run holds %d users, want 8", db.Size())
		}
		checkAllOrNothing(t, db, "golden")
		if o, _, _ := db.Lookup(1); o.T != 2 {
			t.Fatalf("golden run lost the move: %v", o)
		}
		db.Close()
	}

	for _, keepUnsynced := range []bool{false, true} {
		for k := 0; k < total; k++ {
			label := fmt.Sprintf("k=%d keep=%v", k, keepUnsynced)
			fs := store.NewCrashFS()
			fs.SetFailAfter(k)
			crashShardedRun(fs)
			if !fs.Dead() {
				fs.CutPower()
			}
			fs.Reboot(keepUnsynced)

			db, err := Open(crashShardedOpts(fs))
			if err != nil {
				t.Fatalf("%s: recovery failed: %v", label, err)
			}
			checkAllOrNothing(t, db, label)

			// Recovery must also be stable: a second clean reopen sees the
			// same verdict.
			committed := false
			if _, ok, _ := db.Lookup(UserID(txnUserBase + 1)); ok {
				committed = true
			}
			if err := db.Close(); err != nil {
				t.Fatalf("%s: close: %v", label, err)
			}
			db, err = Open(crashShardedOpts(fs))
			if err != nil {
				t.Fatalf("%s: second recovery failed: %v", label, err)
			}
			if _, ok, _ := db.Lookup(UserID(txnUserBase + 1)); ok != committed {
				t.Fatalf("%s: verdict flipped across reopens: %v -> %v", label, committed, ok)
			}
			checkAllOrNothing(t, db, label+" (reopened)")
			db.Close()
		}
	}
}

// TestShardedCrashAfterDecision pins the protocol's commit point: once the
// decision log records the transaction, recovery must COMMIT it even if no
// shard ever logged its marker.
func TestShardedCrashAfterDecision(t *testing.T) {
	fs := store.NewCrashFS()
	opts := crashShardedOpts(fs)
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range quadrant {
		if err := db.Upsert(Object{UID: UserID(i + 1), X: q[0], Y: q[1], T: 1}); err != nil {
			t.Fatal(err)
		}
	}
	b := db.NewBatch()
	for i, q := range quadrant {
		b.Upsert(Object{UID: UserID(txnUserBase + i + 1), X: q[0] + 10, Y: q[1] + 10, T: 2})
	}
	b.Upsert(Object{UID: 1, X: quadrant[2][0] - 20, Y: quadrant[2][1] - 20, T: 2})
	if err := db.Apply(b); err != nil {
		t.Fatal(err)
	}
	// Power-cut without a clean close: every synced prefix (prepares,
	// decision, markers) survives.
	fs.CutPower()
	fs.Reboot(false)
	re, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	checkAllOrNothing(t, re, "after-decision")
	if _, ok, _ := re.Lookup(UserID(txnUserBase + 1)); !ok {
		t.Fatal("acknowledged cross-shard commit lost")
	}
}

// The resharding crash suite: the fault point sweeps over every
// filesystem operation of a run that performs an online split (or merge),
// and recovery must land on a consistent topology — all-or-nothing with
// respect to the manifest's commit point, every object present exactly
// once in the shard that routes its position, and the verdict stable
// across further reopens.

// crashReshardRun seeds three users per quadrant, then splits shard 0 (or
// merges it into its route neighbor). Errors are ignored — the filesystem
// is dying mid-run by design.
func crashReshardRun(fs store.VFS, kind string) {
	db, err := Open(crashShardedOpts(fs))
	if err != nil {
		return
	}
	defer db.Close()
	u := 1
	for _, q := range quadrant {
		for j := 0; j < 3; j++ {
			_ = db.Upsert(Object{UID: UserID(u), X: q[0] + float64(j*7), Y: q[1] + float64(j*7), T: 1})
			u++
		}
	}
	if kind == "split" {
		_ = db.Split(0)
	} else {
		_ = db.Merge(0)
	}
}

// checkReshardRecovery asserts the recovered topology and data are
// consistent after a mid-reshard crash, and returns the shard count for
// the stability check.
func checkReshardRecovery(t *testing.T, db *DB, label string, kind string) int {
	t.Helper()
	n := db.Shards()
	switch kind {
	case "split":
		if n != 4 && n != 5 {
			t.Fatalf("%s: %d shards, want 4 (no split) or 5 (split)", label, n)
		}
	case "merge":
		if n != 4 && n != 3 {
			t.Fatalf("%s: %d shards, want 4 (no merge) or 3 (merge)", label, n)
		}
	}
	// Open rolls any pending migration forward before serving.
	if db.pending != nil {
		t.Fatalf("%s: pending %s survived recovery", label, db.pending.Kind)
	}
	// Topology invariants hold exactly (routes partition, covers contain).
	ts := topoState{epoch: db.epoch, nextID: db.nextID, metas: db.metas}
	if err := ts.validate(db.grid.Order); err != nil {
		t.Fatalf("%s: recovered topology invalid: %v", label, err)
	}
	// Every object exists exactly once, at a position it was written with,
	// in the shard that routes it.
	seen := make(map[UserID]bool)
	total := 0
	for i, s := range db.shards {
		objs, err := s.Objects()
		if err != nil {
			t.Fatalf("%s: enumerate slot %d: %v", label, i, err)
		}
		for _, o := range objs {
			if seen[o.UID] {
				t.Fatalf("%s: user %d present in two shards", label, o.UID)
			}
			seen[o.UID] = true
			total++
			if o.T != 1 {
				t.Fatalf("%s: user %d carries unexpected state %+v", label, o.UID, o)
			}
			if got := db.shardOf(o.X, o.Y); got != i {
				t.Fatalf("%s: user %d held by slot %d but routed to %d", label, o.UID, i, got)
			}
		}
	}
	if db.Size() != total {
		t.Fatalf("%s: owner map holds %d users, shards hold %d", label, db.Size(), total)
	}
	return n
}

func testShardedCrashMidReshard(t *testing.T, kind string) {
	golden := store.NewCrashFS()
	crashReshardRun(golden, kind)
	total := golden.Ops()
	if total < 30 {
		t.Fatalf("suspiciously few fault points: %d", total)
	}
	// Sanity: the golden run completed the topology change.
	{
		db, err := Open(crashShardedOpts(golden))
		if err != nil {
			t.Fatalf("golden reopen: %v", err)
		}
		want := 5
		if kind == "merge" {
			want = 3
		}
		if got := checkReshardRecovery(t, db, "golden", kind); got != want {
			t.Fatalf("golden run holds %d shards, want %d", got, want)
		}
		if db.Size() != 12 {
			t.Fatalf("golden run holds %d users, want 12", db.Size())
		}
		db.Close()
	}

	for _, keepUnsynced := range []bool{false, true} {
		for k := 0; k < total; k++ {
			label := fmt.Sprintf("%s k=%d keep=%v", kind, k, keepUnsynced)
			fs := store.NewCrashFS()
			fs.SetFailAfter(k)
			crashReshardRun(fs, kind)
			if !fs.Dead() {
				fs.CutPower()
			}
			fs.Reboot(keepUnsynced)

			db, err := Open(crashShardedOpts(fs))
			if err != nil {
				t.Fatalf("%s: recovery failed: %v", label, err)
			}
			n1 := checkReshardRecovery(t, db, label, kind)
			size1 := db.Size()
			if err := db.Close(); err != nil {
				t.Fatalf("%s: close: %v", label, err)
			}

			// Topology and data verdicts are stable across another reopen.
			db, err = Open(crashShardedOpts(fs))
			if err != nil {
				t.Fatalf("%s: second recovery failed: %v", label, err)
			}
			n2 := checkReshardRecovery(t, db, label+" (reopened)", kind)
			if n2 != n1 || db.Size() != size1 {
				t.Fatalf("%s: verdict flipped across reopens: %d/%d shards, %d/%d users",
					label, n1, n2, size1, db.Size())
			}
			db.Close()
		}
	}
}

func TestShardedCrashMidSplit(t *testing.T) { testShardedCrashMidReshard(t, "split") }
func TestShardedCrashMidMerge(t *testing.T) { testShardedCrashMidReshard(t, "merge") }
