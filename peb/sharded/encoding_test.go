package sharded

import (
	"math/rand"
	"testing"

	"repro/peb"
)

// TestSharedEncodingCoversAllShards exercises the broadcast-assignment
// path on the case the per-shard computation never faced: users who only
// ever reported positions (no policy entries anywhere) and live on shards
// other than shard 0. The shared assignment is computed on shard 0, so it
// must fold in the routing map's users or the install would reject every
// other shard.
func TestSharedEncodingCoversAllShards(t *testing.T) {
	db, err := Open(Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	side := db.shards[0].Bounds().MaxX
	rng := rand.New(rand.NewSource(21))
	for u := 1; u <= 40; u++ {
		if err := db.Upsert(cqRandObject(rng, UserID(u), 1, side)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.EncodePolicies(); err != nil {
		t.Fatal(err)
	}
	// Now add policies, re-encode, and make sure queries work end to end.
	if err := db.DefineRelation(1, 2, "buddy"); err != nil {
		t.Fatal(err)
	}
	if err := db.Grant(1, "buddy", Region{MinX: 0, MinY: 0, MaxX: side, MaxY: side},
		TimeInterval{Start: 0, End: 1440}); err != nil {
		t.Fatal(err)
	}
	if err := db.EncodePolicies(); err != nil {
		t.Fatal(err)
	}
	res, err := db.RangeQuery(2, Region{MinX: 0, MinY: 0, MaxX: side, MaxY: side}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].UID != 1 {
		t.Fatalf("expected exactly user 1 visible to user 2, got %v", res)
	}
	for u := 1; u <= 40; u++ {
		if _, ok, err := db.Lookup(UserID(u)); err != nil || !ok {
			t.Fatalf("user %d lost after shared encodings: ok=%v err=%v", u, ok, err)
		}
	}
}

// TestSharedEncodingSurvivesReopen checks that the broadcast assignment is
// logged per shard like any encode: after a close and reopen, every
// shard's state (and the policy-filtered queries over it) is intact.
func TestSharedEncodingSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Shards: 3, Dir: dir, DB: peb.Options{Durability: peb.DurabilitySync}}
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	side := db.shards[0].Bounds().MaxX
	rng := rand.New(rand.NewSource(22))
	cqSeedPolicies(t, db, rng, 12, side)
	for u := 1; u <= 12; u++ {
		if err := db.Upsert(cqRandObject(rng, UserID(u), 2, side)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.EncodePolicies(); err != nil {
		t.Fatal(err)
	}
	everywhere := Region{MinX: 0, MinY: 0, MaxX: side, MaxY: side}
	want, err := db.RangeQuery(3, everywhere, 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	got, err := db2.RangeQuery(3, everywhere, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("range after reopen: got %d objects, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("range after reopen differs at %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}
