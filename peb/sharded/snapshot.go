package sharded

import (
	"repro/internal/zcurve"
	"repro/peb"
)

// Snapshot is a consistent cut of the whole sharded database: one pinned
// peb.Snapshot per shard, all taken inside a single barrier section, so
// the set reflects one moment of the global history — no cross-shard batch
// is ever half-visible. Queries scatter-gather over the pinned shards
// exactly like the live DB's, without taking any lock; writers proceed
// concurrently the moment Snapshot returns.
//
// The topology is captured with the cut: a split or merge that lands after
// the pin changes the live DB's routing but not the snapshot's, whose
// pinned shards still hold every object exactly where the cut saw it.
type Snapshot struct {
	grid   zcurve.Grid
	covers []zcurve.Interval
	snaps  []*peb.Snapshot
}

// Snapshot pins a consistent cut. The barrier it takes is brief — one
// in-memory pin per shard, no I/O — but it does drain in-flight routed
// writes, the cost of cross-shard consistency. The caller must Close the
// snapshot; an unclosed snapshot pins superseded pages in every shard.
func (db *DB) Snapshot() (*Snapshot, error) {
	db.smu.Lock()
	defer db.smu.Unlock()
	if db.closed {
		return nil, ErrClosed
	}
	s := &Snapshot{
		grid:   db.grid,
		covers: append([]zcurve.Interval(nil), db.covers...),
		snaps:  make([]*peb.Snapshot, len(db.shards)),
	}
	for i, shard := range db.shards {
		snap, err := shard.Snapshot()
		if err != nil {
			for _, taken := range s.snaps[:i] {
				taken.Close()
			}
			return nil, err
		}
		s.snaps[i] = snap
	}
	return s, nil
}

// Close releases every shard's pin. Idempotent.
func (s *Snapshot) Close() error {
	var firstErr error
	for _, snap := range s.snaps {
		if err := snap.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Size returns the number of indexed users at snapshot time (the cut is
// consistent, so no user is counted in two shards).
func (s *Snapshot) Size() int {
	total := 0
	for _, snap := range s.snaps {
		total += snap.Size()
	}
	return total
}

// Lookup returns a user's movement state as of snapshot time.
func (s *Snapshot) Lookup(uid UserID) (Object, bool, error) {
	for _, snap := range s.snaps {
		o, ok, err := snap.Lookup(uid)
		if err != nil {
			return Object{}, false, err
		}
		if ok {
			return o, true, nil
		}
	}
	return Object{}, false, nil
}

// Allows evaluates the policy predicate against the snapshot's pinned
// policies.
func (s *Snapshot) Allows(owner, viewer UserID, x, y, t float64) bool {
	return s.snaps[0].Allows(owner, viewer, x, y, t)
}

// RangeQuery answers the privacy-aware range query against the cut,
// scatter-gathering over the pinned shards with the same routing as the
// live DB (results sorted by user id).
func (s *Snapshot) RangeQuery(issuer UserID, r Region, t float64) ([]Object, error) {
	if !r.Valid() {
		return nil, &peb.InvalidRegionError{Region: r}
	}
	idxs := routeRegionOver(s.grid, s.covers, r, t, s.slack)
	return gatherRange(idxs, issuer, r, t, func(i int) querier { return s.snaps[i] })
}

// NearestNeighbors answers the privacy-aware k-nearest-neighbor query
// against the cut via the same best-first shard expansion as the live DB.
func (s *Snapshot) NearestNeighbors(issuer UserID, x, y float64, k int, t float64) ([]Neighbor, error) {
	return gatherKNN(knnOrderOver(s.grid, s.covers, x, y, t, s.slack), issuer, x, y, k, t,
		func(i int) querier { return s.snaps[i] })
}

// slack is the per-shard motion slack evaluated against the pinned
// partition pictures.
func (s *Snapshot) slack(i int, t float64) float64 {
	return s.snaps[i].MotionSlack(t)
}
