package sharded

import (
	"math/rand"
	"path/filepath"
	"testing"

	"repro/peb"
)

// crossShardBatch builds a batch guaranteed to span at least two shards
// (one upsert in each shard's first cell), forcing the 2PC path.
func crossShardBatch(t *testing.T, db *DB, rng *rand.Rand, uids []UserID, now float64) *Batch {
	t.Helper()
	side := db.shards[0].Bounds().MaxX
	b := db.NewBatch()
	placed := 0
	for _, uid := range uids {
		for tries := 0; tries < 64; tries++ {
			x, y := rng.Float64()*side, rng.Float64()*side
			if db.shardOf(x, y) == placed%db.Shards() {
				b.Upsert(Object{UID: uid, X: x, Y: y, T: now})
				placed++
				break
			}
		}
	}
	if placed < 2 {
		t.Fatal("failed to construct a cross-shard batch")
	}
	return b
}

// TestDecisionLogCompaction drives cross-shard transactions, checkpoints,
// and verifies the decision log collapses to its watermark record — and
// that transactions, recovery, and id monotonicity all survive the
// compaction.
func TestDecisionLogCompaction(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Shards: 3, Dir: dir, DB: peb.Options{Durability: peb.DurabilitySync}}
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	uids := []UserID{1, 2, 3, 4}
	now := 1.0
	for i := 0; i < 8; i++ {
		now++
		if err := db.Apply(crossShardBatch(t, db, rng, uids, now)); err != nil {
			t.Fatal(err)
		}
	}
	sizeBefore := db.txnLog.Size()
	if sizeBefore == 0 {
		t.Fatal("no decisions logged; the batches did not take the 2PC path")
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	sizeAfter := db.txnLog.Size()
	if sizeAfter >= sizeBefore {
		t.Fatalf("decision log did not shrink: %d -> %d bytes", sizeBefore, sizeAfter)
	}
	// A second checkpoint with no new decisions must not touch the log.
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := db.txnLog.Size(); got != sizeAfter {
		t.Fatalf("idle checkpoint rewrote the decision log: %d -> %d bytes", sizeAfter, got)
	}
	wantNext := db.nextTxn

	// Transactions keep working after compaction.
	now++
	if err := db.Apply(crossShardBatch(t, db, rng, uids, now)); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the watermark must keep the id allocator monotonic, and the
	// data must be intact.
	db2, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.nextTxn <= wantNext {
		t.Fatalf("transaction ids went backwards across compaction: reopened nextTxn %d, watermarked %d", db2.nextTxn, wantNext)
	}
	for _, uid := range uids {
		o, ok, err := db2.Lookup(uid)
		if err != nil || !ok {
			t.Fatalf("user %d lost after compaction+reopen: ok=%v err=%v", uid, ok, err)
		}
		if o.T != now {
			t.Fatalf("user %d stale after reopen: t=%g want %g", uid, o.T, now)
		}
	}
	now++
	if err := db2.Apply(crossShardBatch(t, db2, rng, uids, now)); err != nil {
		t.Fatal(err)
	}
}

// TestDecisionLogCompactionCrashAfterTruncate covers the torn compaction:
// a crash can land between the truncate and the watermark append, leaving
// an empty decision log. That is safe — compaction only runs when no
// shard log holds any transaction record — and the next open must come up
// clean and serve transactions.
func TestDecisionLogCompactionCrashAfterTruncate(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Shards: 2, Dir: dir, DB: peb.Options{Durability: peb.DurabilitySync}}
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(33))
	uids := []UserID{1, 2}
	if err := db.Apply(crossShardBatch(t, db, rng, uids, 1)); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Simulate the torn state: empty the decision log behind the router's
	// back, as a crash between Truncate and the watermark append would.
	if err := db.txnLog.Truncate(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if fi, err := filepath.Glob(filepath.Join(dir, "txn.log")); err != nil || len(fi) != 1 {
		t.Fatalf("decision log missing after truncate: %v %v", fi, err)
	}

	db2, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if err := db2.Apply(crossShardBatch(t, db2, rng, uids, 2)); err != nil {
		t.Fatal(err)
	}
	for _, uid := range uids {
		if _, ok, err := db2.Lookup(uid); err != nil || !ok {
			t.Fatalf("user %d lost after torn compaction: ok=%v err=%v", uid, ok, err)
		}
	}
}
