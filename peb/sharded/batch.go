package sharded

import (
	"fmt"

	"repro/peb"
)

// Batch stages mutations for atomic cross-shard application by DB.Apply.
// Like peb.Batch, staging never touches the database; unlike it, the
// staged operations may end up owned by several shards, and Apply then
// commits them with a prepare/commit protocol so the whole batch is
// all-or-nothing — in memory and across a crash — even though every shard
// logs independently. A Batch is not safe for concurrent use.
type Batch struct {
	ops []stagedOp
}

type opKind uint8

const (
	opUpsert opKind = iota
	opRemove
	opRelation
	opGrant
)

type stagedOp struct {
	kind opKind
	obj  Object
	uid  UserID
	own  UserID
	peer UserID
	role Role
	locr Region
	tint TimeInterval
}

// NewBatch returns an empty staging buffer.
func (db *DB) NewBatch() *Batch { return &Batch{} }

// Len returns the number of staged operations.
func (b *Batch) Len() int { return len(b.ops) }

// Upsert stages a movement update.
func (b *Batch) Upsert(o Object) {
	b.ops = append(b.ops, stagedOp{kind: opUpsert, obj: o})
}

// Remove stages deletion of a user's index entry. Removing a user with no
// index entry fails the whole batch at Apply time.
func (b *Batch) Remove(uid UserID) {
	b.ops = append(b.ops, stagedOp{kind: opRemove, uid: uid})
}

// DefineRelation stages a role relation (broadcast to every shard).
func (b *Batch) DefineRelation(owner, peer UserID, role Role) {
	b.ops = append(b.ops, stagedOp{kind: opRelation, own: owner, peer: peer, role: role})
}

// Grant stages a location-privacy policy (broadcast to every shard).
func (b *Batch) Grant(owner UserID, role Role, locr Region, tint TimeInterval) {
	b.ops = append(b.ops, stagedOp{kind: opGrant, own: owner, role: role, locr: locr, tint: tint})
}

// ownerTombstone marks a user the batch removes in the pending owner-map
// delta.
const ownerTombstone = -1

// Apply applies the batch atomically. The batch is split by owning shard —
// movement updates go to the shard owning the new position (plus an
// eviction from the previous owner when the user moves across a boundary),
// policy operations go to every shard — and then:
//
//   - a batch owned by a single shard commits directly through that
//     shard's atomic Apply;
//   - a batch spanning shards commits via two-phase commit: every
//     participant prepares (applies + logs a prepared record), the router
//     logs the commit decision in its own log — the transaction's single
//     durable commit point — and the participants then seal their logs
//     with commit markers. Any prepare failure aborts every participant
//     exactly, leaving no trace of the batch.
//
// After a crash anywhere in the protocol, recovery resolves every
// participant to the same verdict (see peb.Options.TxnResolve), so the
// batch is all-or-nothing across shards. Without durability the same
// protocol runs without logs: atomicity holds in memory.
func (db *DB) Apply(b *Batch) error {
	db.smu.Lock()
	defer db.smu.Unlock()
	if db.closed {
		return ErrClosed
	}
	if b == nil || len(b.ops) == 0 {
		return nil
	}

	// Split by owning shard. ownerDelta tracks the routing consequences in
	// batch order, so multi-step sequences on one user (upsert here, then
	// there) stage the right inserts and evictions.
	subs := make([]*peb.Batch, len(db.shards))
	for i := range subs {
		subs[i] = db.shards[i].NewBatch()
	}
	ownerDelta := make(map[UserID]int)
	ownerOf := func(uid UserID) (int, bool) {
		if d, ok := ownerDelta[uid]; ok {
			if d == ownerTombstone {
				return 0, false
			}
			return d, true
		}
		db.ownMu.Lock()
		idx, ok := db.owner[uid]
		db.ownMu.Unlock()
		return idx, ok
	}
	for i := range b.ops {
		op := &b.ops[i]
		switch op.kind {
		case opUpsert:
			target := db.shardOf(op.obj.X, op.obj.Y)
			cur, had := ownerOf(op.obj.UID)
			subs[target].Upsert(op.obj)
			if had && cur != target {
				subs[cur].Remove(op.obj.UID)
			}
			ownerDelta[op.obj.UID] = target
		case opRemove:
			cur, had := ownerOf(op.uid)
			if !had {
				return fmt.Errorf("sharded: apply: remove of unindexed user %d", op.uid)
			}
			subs[cur].Remove(op.uid)
			ownerDelta[op.uid] = ownerTombstone
		case opRelation:
			for _, sub := range subs {
				sub.DefineRelation(op.own, op.peer, op.role)
			}
		case opGrant:
			for _, sub := range subs {
				sub.Grant(op.own, op.role, op.locr, op.tint)
			}
		}
	}
	var parts []int
	for i, sub := range subs {
		if sub.Len() > 0 {
			parts = append(parts, i)
		}
	}
	committed, err := db.commitParts(parts, subs)
	if committed {
		db.applyOwnerDelta(ownerDelta)
	}
	return err
}

// commitParts atomically commits the staged per-shard sub-batches whose
// slots are listed in parts: a single participant commits through its
// shard's own atomic Apply, several commit via two-phase commit with the
// decision point in the router's log. Shared by Apply and the resharding
// migration loop (reshard.go), which moves objects between shards with
// exactly the same all-or-nothing guarantees as a user batch. The caller
// holds the write barrier.
//
// committed reports whether the batch's effects are in place (it can be
// true alongside a non-nil error: a commit-marker failure fail-stops one
// shard's log, but the transaction itself is durably decided).
func (db *DB) commitParts(parts []int, subs []*peb.Batch) (committed bool, err error) {
	if len(parts) == 0 {
		return true, nil
	}

	// Single owner: the shard's own atomic Apply is all the protocol
	// needed.
	if len(parts) == 1 {
		if err := db.shards[parts[0]].Apply(subs[parts[0]]); err != nil {
			return false, err
		}
		db.noteWrite(parts[0])
		return true, nil
	}

	// Cross-shard: two-phase commit.
	txnID := db.allocTxn()
	prepared := make([]*peb.Prepared, 0, len(parts))
	abortAll := func() {
		for _, p := range prepared {
			// Abort restores each participant exactly; an abort error means
			// that shard is fail-stopped (poisoned log) and will resolve to
			// abort on reopen — the verdict is the same either way.
			_ = p.Abort()
		}
	}
	for _, i := range parts {
		p, err := db.shards[i].PrepareApply(subs[i], txnID)
		if err != nil {
			abortAll()
			db.events.Record("txn.abort", "cross-shard transaction aborted at prepare",
				"txn", txnID, "parts", len(parts), "shard", db.metas[i].id, "err", err)
			return false, fmt.Errorf("sharded: apply: shard %d: %w", i, err)
		}
		prepared = append(prepared, p)
	}
	if db.txnLog != nil {
		if err := db.logDecision(txnID, true); err != nil {
			// The commit decision's durability is UNKNOWN — its bytes may
			// have reached disk despite the error, and a future recovery
			// would then commit the transaction. Rolling the participants
			// back is safe only after durably retracting the decision.
			if aerr := db.logDecision(txnID, false); aerr != nil {
				// In doubt, both ways. Fail stop: the participants stay
				// prepared (their checkpoint gates hold the undecided
				// transaction out of any image) and the router refuses
				// further work; restarting the process resolves every
				// shard to the same verdict from whatever the decision
				// log holds.
				db.closed = true
				db.events.Record("txn.indoubt", "decision log unwritable both ways; router fail-stopped",
					"txn", txnID, "parts", len(parts), "commit_err", err, "retract_err", aerr)
				return false, fmt.Errorf("sharded: transaction %d in doubt (commit decision: %v; retraction: %v) — restart to resolve", txnID, err, aerr)
			}
			abortAll()
			db.events.Record("txn.abort", "cross-shard transaction aborted at decision",
				"txn", txnID, "parts", len(parts), "err", err)
			return false, err
		}
	}
	var firstErr error
	for _, p := range prepared {
		if err := p.Commit(); err != nil && firstErr == nil {
			// The transaction IS committed (the decision log says so); the
			// marker failure only fail-stops that shard's log.
			firstErr = fmt.Errorf("sharded: apply: commit marker: %w", err)
		}
	}
	for _, i := range parts {
		db.noteWrite(i)
	}
	db.events.Record("txn.commit", "cross-shard transaction committed",
		"txn", txnID, "parts", len(parts))
	return true, firstErr
}

// applyOwnerDelta folds a committed batch's routing changes into the owner
// map.
func (db *DB) applyOwnerDelta(delta map[UserID]int) {
	db.ownMu.Lock()
	defer db.ownMu.Unlock()
	for uid, d := range delta {
		if d == ownerTombstone {
			delete(db.owner, uid)
		} else {
			db.owner[uid] = d
		}
	}
}
