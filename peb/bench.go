package peb

import (
	"runtime"
	"time"
)

// WAL codec before/after measurement. The gob encoder this PR retired is
// kept in the tree (marshalRecordGob) precisely so the comparison stays
// honest: both encoders run over the identical synthetic record stream on
// the same machine, in the same process. pebbench -json embeds the result
// in its report; BENCH_pr6.json pins the trajectory.

// WALCodecBench holds one gob-vs-binary codec comparison.
type WALCodecBench struct {
	Records int `json:"records"`
	// Bytes per record, averaged over the stream. Deterministic for a
	// fixed Records, so safe to diff across runs.
	GobBytesPerRecord    float64 `json:"gob_bytes_per_record"`
	BinaryBytesPerRecord float64 `json:"binary_bytes_per_record"`
	// Encode allocations per record. The binary encoder reuses one buffer
	// (the production append path does the same), so steady state is zero.
	GobAllocsPerOp    float64 `json:"gob_allocs_per_op"`
	BinaryAllocsPerOp float64 `json:"binary_allocs_per_op"`
	// Encode wall time per record. Informational: machine-dependent, not
	// a counter to diff in CI.
	GobNsPerOp    float64 `json:"gob_ns_per_op"`
	BinaryNsPerOp float64 `json:"binary_ns_per_op"`
}

// benchWALRecord builds the i-th record of the synthetic stream: the
// single-op upsert shape that dominates a movement workload's log.
func benchWALRecord(i int) walRecord {
	uid := UserID(i%1000 + 1)
	return walRecord{
		Seq:    uint64(i + 1),
		NextSV: float64(i%97) + 0.5,
		Ops: []walOp{{
			Kind: walOpUpsert,
			Obj: Object{
				UID: uid,
				X:   float64(i * 37 % 1000),
				Y:   float64(i * 59 % 1000),
				VX:  float64(i%5) - 2,
				VY:  float64(i%3) - 1,
				T:   float64(i % 50),
			},
		}},
	}
}

// benchAllocsPerRun reports the average mallocs per call of fn, pinned to
// one P so unrelated goroutines cannot pollute the counter (the same
// discipline as testing.AllocsPerRun, without importing testing into the
// library).
func benchAllocsPerRun(runs int, fn func(i int)) float64 {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	fn(0) // warm caches and lazy allocations outside the measured window
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		fn(i)
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(runs)
}

// RunWALCodecBench encodes the same records-long stream with the retired
// gob codec and the binary codec and reports size, allocation, and time
// per record for each.
func RunWALCodecBench(records int) WALCodecBench {
	if records <= 0 {
		records = 1
	}
	res := WALCodecBench{Records: records}

	var gobBytes, binBytes int
	var buf []byte
	for i := 0; i < records; i++ {
		rec := benchWALRecord(i)
		if enc, err := marshalRecordGob(&rec); err == nil {
			gobBytes += len(enc)
		}
		buf = appendRecord(buf[:0], &rec)
		binBytes += len(buf)
	}
	res.GobBytesPerRecord = float64(gobBytes) / float64(records)
	res.BinaryBytesPerRecord = float64(binBytes) / float64(records)

	res.GobAllocsPerOp = benchAllocsPerRun(records, func(i int) {
		rec := benchWALRecord(i)
		_, _ = marshalRecordGob(&rec)
	})
	res.BinaryAllocsPerOp = benchAllocsPerRun(records, func(i int) {
		rec := benchWALRecord(i)
		buf = appendRecord(buf[:0], &rec)
	})
	// Subtract the shared record-construction cost so the encoder deltas
	// are what the numbers show. Construction is alloc-free (value types),
	// so only the timing loop needs the control measurement.
	ctrl := timePerOp(records, func(i int) {
		rec := benchWALRecord(i)
		_ = rec
	})
	res.GobNsPerOp = timePerOp(records, func(i int) {
		rec := benchWALRecord(i)
		_, _ = marshalRecordGob(&rec)
	}) - ctrl
	res.BinaryNsPerOp = timePerOp(records, func(i int) {
		rec := benchWALRecord(i)
		buf = appendRecord(buf[:0], &rec)
	}) - ctrl
	return res
}

func timePerOp(runs int, fn func(i int)) float64 {
	fn(0)
	start := time.Now()
	for i := 0; i < runs; i++ {
		fn(i)
	}
	return float64(time.Since(start).Nanoseconds()) / float64(runs)
}
