package peb

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/policy"
	"repro/internal/store"
)

// Replica is a read-only follower of a durable DB. It bootstraps a copy
// of the primary's state, then tails the primary's segmented write-ahead
// log — sealed segments plus the active one, through the shared VFS — and
// applies each record through the same replay path recovery uses, so the
// replica's state at horizon H is byte-for-byte the state a primary
// recovery of the log prefix through H would produce.
//
// Reads (RangeQuery, NearestNeighbors, Snapshot) are served from the
// replica's own in-memory index under its own lock, so follower reads
// scale out without touching the primary's read lock at all. Every read
// is snapshot-consistent at a known WAL horizon: Horizon reports the
// sequence number of the last applied commit, and Snapshot returns a
// pinned handle tagged with the horizon it was cut at.
//
// # Consistency
//
// The replica is asynchronous: a commit acknowledged by the primary
// becomes visible here only after the tailer has read and applied its
// record. Callers needing read-your-writes compare Horizon against the
// sequence a write returned (peb/sharded does exactly this and falls
// back to the primary when the replica lags). CatchUp synchronously
// drains everything the primary had appended when it was called.
//
// Cross-shard transactions replicate exactly: a prepared record's fate
// is unknowable until its commit/abort marker, so the tailer stalls
// application at an undecided prepared record — buffering the records
// behind it — and resumes when the marker arrives, applying or skipping
// the prepared operations just as recovery would. The horizon therefore
// lags during a two-phase-commit window; it never exposes an undecided
// transaction.
//
// # Retention
//
// An attached replica pins the primary's log: checkpoint publication
// drops sealed segments only below every replica's cursor (the retention
// floor), so the tailer never finds a segment deleted out from under it.
// Close detaches the replica and releases the pin.
type Replica struct {
	primary *DB
	fs      store.VFS
	path    string // the primary's log base path (<Path>.wal)

	// db holds the replica's applied state: an in-memory DB (no path, no
	// log of its own) whose walSeq is the replication horizon. Queries
	// delegate to it; the tailer mutates it under its write lock.
	db *DB

	// mu serializes the tailer with CatchUp and Snapshot: it guards the
	// read cursor, the stalled-record buffer, and the applied/err state
	// transitions. Lock order: mu before db.mu.
	mu       sync.Mutex
	cursor   store.SegPos // next log byte to read
	pending  []walRecord  // decoded, not yet applied (stalled on an undecided prepared record)
	outcomes map[uint64]uint8
	err      error

	// horizon is the advertised applied horizon. It is published only
	// AFTER a drain has refreshed db's query view: db.walSeq advances
	// record by record mid-drain, ahead of the view freshness a reader
	// checking Horizon actually cares about — advertising walSeq directly
	// would let a router serve a stale view it believes is fresh.
	horizon atomic.Uint64

	wake       chan struct{}
	stop       chan struct{}
	done       chan struct{}
	removeHook func()
	closeOnce  sync.Once
	closeErr   error
}

// replicaPollInterval is the tailer's fallback poll period. Commit hooks
// wake it immediately on every primary commit; the ticker only covers the
// window between a hook registered mid-bootstrap and records appended
// just before it, and wakes lost while a poll was already running.
const replicaPollInterval = 5 * time.Millisecond

// NewReplica attaches a follower to a durable, file-backed primary. The
// snapshot transfer runs under the primary's read lock (commits wait,
// queries proceed); tailing starts immediately after.
func NewReplica(primary *DB) (*Replica, error) {
	r := &Replica{
		primary:  primary,
		wake:     make(chan struct{}, 1),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
		outcomes: make(map[uint64]uint8),
	}
	if err := r.bootstrap(); err != nil {
		return nil, err
	}
	// Register the wake-up hook after bootstrap (AddCommitHook needs the
	// write lock the bootstrap's read lock excludes). Commits landing in
	// between are caught by the run loop's initial poll.
	r.removeHook = primary.AddCommitHook(func(CommitInfo, *CommitView) {
		select {
		case r.wake <- struct{}{}:
		default:
		}
	})
	go r.run()
	return r, nil
}

// bootstrap copies the primary's state and registers the retention floor.
//
// The capture excludes pending prepared transactions the same way a
// checkpoint cut does (lockExcludingPrepared's protocol, with a read
// lock): copying applied-but-undecided mutations would strand the replica
// when the abort marker — which carries no compensating operations —
// arrives. With none pending, the read lock alone makes the capture
// consistent: every commit applies state and appends its record under the
// write lock, so tree content, walSeq, and the log mark agree exactly.
func (r *Replica) bootstrap() error {
	p := r.primary
	p.prepMu.Lock()
	for p.pendingPrepared > 0 {
		p.prepCond.Wait()
	}
	p.mu.RLock()
	p.prepMu.Unlock()

	capErr := func() error {
		defer p.mu.RUnlock()
		if p.closed {
			return ErrClosed
		}
		if p.wal == nil {
			return fmt.Errorf("peb: replication requires a durable primary (Options.Durability)")
		}

		var polBuf bytes.Buffer
		if err := p.policies.Save(&polBuf); err != nil {
			return fmt.Errorf("peb: replica bootstrap policies: %w", err)
		}
		loaded, err := policy.Load(bytes.NewReader(polBuf.Bytes()))
		if err != nil {
			return fmt.Errorf("peb: replica bootstrap policies: %w", err)
		}

		asg := policy.Assignment{
			SV:     make(map[policy.UserID]float64, len(p.assignment.SV)),
			MaxSV:  p.assignment.MaxSV,
			Groups: p.assignment.Groups,
		}
		for uid, sv := range p.assignment.SV {
			asg.SV[uid] = sv
		}

		opts := Options{
			SpaceSide:         p.opts.SpaceSide,
			DayLength:         p.opts.DayLength,
			MaxSpeed:          p.opts.MaxSpeed,
			MaxUpdateInterval: p.opts.MaxUpdateInterval,
			BufferPages:       p.opts.BufferPages,
		}
		opts.setDefaults()
		rdb := &DB{
			opts:     opts,
			policies: loaded,
			users:    make(map[UserID]bool, len(p.users)),
			snaps:    make(map[*Snapshot]struct{}),
		}
		rdb.prepCond = sync.NewCond(&rdb.prepMu)
		if err := rdb.newTree(asg); err != nil {
			return fmt.Errorf("peb: replica bootstrap tree: %w", err)
		}
		// Sequence values must transfer in their encoded form: the floats
		// they were computed from are gone, and the index keys about to be
		// rebuilt embed the encoding verbatim.
		for uid, enc := range p.tree.Snapshot().SVs {
			if err := rdb.tree.SetSVEnc(uid, enc); err != nil {
				return fmt.Errorf("peb: replica bootstrap sv: %w", err)
			}
		}
		for _, uid := range p.view.UserIDs() {
			o, ok, err := p.view.Get(uid)
			if err != nil {
				return fmt.Errorf("peb: replica bootstrap read u%d: %w", uid, err)
			}
			if !ok {
				continue
			}
			if err := rdb.tree.Insert(o); err != nil {
				return fmt.Errorf("peb: replica bootstrap insert u%d: %w", uid, err)
			}
		}
		for uid := range p.users {
			rdb.users[uid] = true
		}
		rdb.nextSV = p.nextSV
		if rdb.nextSV < 2 {
			rdb.nextSV = 2
		}
		rdb.encoded = p.encoded
		rdb.walSeq = p.walSeq
		rdb.maxTxn = p.maxTxn
		rdb.refreshView()

		r.db = rdb
		r.fs = p.opts.FS
		r.path = p.opts.Path + ".wal"
		r.cursor = p.wal.Mark()
		r.horizon.Store(rdb.walSeq)

		// Register the retention floor while still holding the read lock:
		// checkpoint publication needs the write lock, so no segment at or
		// past the cursor can be dropped before the floor is visible.
		p.repMu.Lock()
		if p.repFloors == nil {
			p.repFloors = make(map[*Replica]store.SegPos)
		}
		p.repFloors[r] = r.cursor
		p.repMu.Unlock()
		return nil
	}()
	return capErr
}

// run is the tailer goroutine: poll on every primary commit (hook wake),
// with a slow ticker as a safety net.
func (r *Replica) run() {
	defer close(r.done)
	tick := time.NewTicker(replicaPollInterval)
	defer tick.Stop()
	r.poll()
	for {
		select {
		case <-r.stop:
			return
		case <-r.wake:
		case <-tick.C:
		}
		r.poll()
	}
}

// poll drains everything currently readable from the log. A tail error is
// sticky: the replica stops advancing and reports it from Err/CatchUp.
func (r *Replica) poll() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.err != nil {
		return
	}
	for {
		progress, err := r.pollOnceLocked()
		if err != nil {
			r.err = err
			return
		}
		if !progress {
			return
		}
	}
}

// pollOnceLocked reads the cursor's segment once and applies what it
// finds. Caller holds r.mu.
//
// Segment-advance protocol: the existence of the NEXT segment is probed
// BEFORE reading the current one. Rolling seals (fsyncs) a segment before
// creating its successor, so if the successor existed before our read,
// the bytes we read are the segment's final content — trailing garbage is
// real corruption, and an end-of-data cursor may safely advance. If the
// successor did not exist, any trailing partial frame is just an append
// in flight; we re-read next poll.
func (r *Replica) pollOnceLocked() (progress bool, err error) {
	seg := r.cursor.Seg
	name := store.SegmentWALName(r.path, seg)
	nextExists, err := r.fs.Exists(store.SegmentWALName(r.path, seg+1))
	if err != nil {
		return false, fmt.Errorf("peb: replica probe segment: %w", err)
	}
	data, err := r.fs.ReadFile(name)
	if err != nil {
		return false, fmt.Errorf("peb: replica read segment %06d: %w", seg, err)
	}
	if int64(len(data)) > r.cursor.Off {
		frames, n := store.ScanWALFrames(data[r.cursor.Off:])
		if len(frames) > 0 {
			if err := r.ingestLocked(frames); err != nil {
				return false, err
			}
			r.cursor.Off += int64(n)
			r.updateFloorLocked()
			progress = true
		}
		if int64(len(data)) > r.cursor.Off {
			if nextExists {
				return progress, fmt.Errorf("peb: replica: invalid tail in sealed wal segment %06d", seg)
			}
			return progress, nil // in-flight append; retry on next wake
		}
	}
	if nextExists {
		r.cursor = store.SegPos{Seg: seg + 1, Off: 0}
		r.updateFloorLocked()
		return true, nil
	}
	return progress, nil
}

// updateFloorLocked publishes the cursor as this replica's retention
// floor, releasing segments the tailer has fully consumed.
func (r *Replica) updateFloorLocked() {
	p := r.primary
	p.repMu.Lock()
	if _, ok := p.repFloors[r]; ok {
		p.repFloors[r] = r.cursor
	}
	p.repMu.Unlock()
}

// ingestLocked decodes newly read frames, collects transaction outcome
// markers, and applies every record whose fate is decided, in log order.
func (r *Replica) ingestLocked(frames [][]byte) error {
	for _, payload := range frames {
		rec, err := unmarshalRecord(payload)
		if err != nil {
			return fmt.Errorf("peb: replica decode record: %w", err)
		}
		if rec.TxnState == txnCommitted || rec.TxnState == txnAborted {
			r.outcomes[rec.TxnID] = rec.TxnState
		}
		r.pending = append(r.pending, rec)
	}
	return r.drainLocked()
}

// drainLocked applies pending records in order, stopping at the first
// prepared record whose outcome marker has not arrived yet — exactly
// recovery's semantics, incrementally: a committed prepared record
// applies at its original log position, an aborted one is skipped with
// its sequence number consumed.
func (r *Replica) drainLocked() error {
	applied := false
	for len(r.pending) > 0 {
		rec := r.pending[0]
		if rec.TxnState == txnPrepared {
			outcome, decided := r.outcomes[rec.TxnID]
			if !decided {
				break // stall until the marker arrives in the tail
			}
			if outcome != txnCommitted {
				r.db.mu.Lock()
				if rec.TxnID > r.db.maxTxn {
					r.db.maxTxn = rec.TxnID
				}
				r.db.walSeq = rec.Seq // consumed, not applied
				r.db.mu.Unlock()
				r.pending = r.pending[1:]
				continue
			}
		}
		r.db.mu.Lock()
		var err error
		if rec.Seq > r.db.walSeq { // defensive: never double-apply
			if rec.TxnID > r.db.maxTxn {
				r.db.maxTxn = rec.TxnID
			}
			err = r.db.replayRecord(rec)
		}
		r.db.mu.Unlock()
		if err != nil {
			return fmt.Errorf("peb: replica apply record %d: %w", rec.Seq, err)
		}
		applied = true
		r.pending = r.pending[1:]
	}
	r.db.mu.Lock()
	if applied {
		r.db.refreshView()
	}
	// Publish the horizon only now — with the view refreshed — so a reader
	// that observes it is guaranteed a query view of at least that
	// freshness. (Aborted-only drains advance it without a refresh: the
	// view was never behind.)
	r.horizon.Store(r.db.walSeq)
	r.db.mu.Unlock()
	return nil
}

// Horizon returns the WAL sequence number of the last commit applied to
// the replica: every read served here reflects exactly the primary's
// history through this sequence.
func (r *Replica) Horizon() uint64 {
	return r.horizon.Load()
}

// Position returns the replica's log read cursor (segment, offset) — the
// retention floor it holds on the primary's log.
func (r *Replica) Position() store.SegPos {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cursor
}

// Err returns the sticky tail error, if the replica has stopped applying
// (segment corruption, an apply failure). A healthy replica returns nil.
func (r *Replica) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// CatchUp synchronously consumes everything the primary had appended at
// the moment of the call, returning the horizon afterwards. Records whose
// transaction outcome is still undecided remain stalled (the horizon
// stops just short of them) — they apply when the coordinator's marker
// lands.
func (r *Replica) CatchUp() (uint64, error) {
	r.primary.mu.RLock()
	var target store.SegPos
	if r.primary.wal != nil {
		target = r.primary.wal.Mark()
	}
	r.primary.mu.RUnlock()

	r.mu.Lock()
	defer r.mu.Unlock()
	for r.err == nil && r.cursor.Less(target) {
		progress, err := r.pollOnceLocked()
		if err != nil {
			r.err = err
			break
		}
		if !progress {
			// The target bytes exist (Mark precedes this call), so a
			// no-progress poll can only be a torn frame mid-write whose
			// completion is imminent; yield and retry.
			r.mu.Unlock()
			time.Sleep(50 * time.Microsecond)
			r.mu.Lock()
		}
	}
	if r.err != nil {
		return 0, r.err
	}
	return r.horizon.Load(), nil
}

// Snapshot returns a pinned, immutable read handle on the replica's
// state together with the WAL horizon it was cut at: the snapshot is the
// primary's exact committed state at that sequence number. The caller
// must Close the snapshot.
func (r *Replica) Snapshot() (*Snapshot, uint64, error) {
	// Hold r.mu so the tailer cannot advance the horizon between pinning
	// the view and reading the sequence.
	r.mu.Lock()
	defer r.mu.Unlock()
	snap, err := r.db.Snapshot()
	if err != nil {
		return nil, 0, err
	}
	return snap, r.horizon.Load(), nil
}

// RangeQuery answers the paper's PRQ against the replica's current state
// (see DB.RangeQuery). The result reflects the primary's history through
// Horizon().
func (r *Replica) RangeQuery(issuer UserID, reg Region, t float64) ([]Object, error) {
	return r.db.RangeQuery(issuer, reg, t)
}

// NearestNeighbors answers the paper's PkNN against the replica's current
// state (see DB.NearestNeighbors).
func (r *Replica) NearestNeighbors(issuer UserID, x, y float64, k int, t float64) ([]Neighbor, error) {
	return r.db.NearestNeighbors(issuer, x, y, k, t)
}

// Close stops the tailer, releases the retention floor on the primary's
// log, and tears down the replica's state. Idempotent.
func (r *Replica) Close() error {
	r.closeOnce.Do(func() {
		close(r.stop)
		<-r.done
		if r.removeHook != nil {
			r.removeHook()
		}
		p := r.primary
		p.repMu.Lock()
		delete(p.repFloors, r)
		p.repMu.Unlock()
		r.closeErr = r.db.Close()
	})
	return r.closeErr
}
