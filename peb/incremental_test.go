package peb

import (
	"testing"
)

// Incremental-checkpoint decision and exactness tests.
//
// The dead-extent ledger must make incremental builds (a) chosen exactly
// when the tracking chain is unbroken — never on a first checkpoint, after
// recovery, after an abort, or after an index rebuild — and (b) exact:
// reclaiming precisely the pages a full sweep would have found, so that a
// later full sweep over the same image finds nothing left to free.

func incrOpts(dir string) Options {
	return Options{Path: dir + "/db.idx", Durability: DurabilitySync, BufferPages: 8}
}

func incrChurn(t *testing.T, db *DB, salt int) {
	t.Helper()
	b := db.NewBatch()
	for i := 1; i <= 40; i++ {
		b.Upsert(goldenObj(i, salt))
	}
	if err := db.Apply(b); err != nil {
		t.Fatal(err)
	}
}

func buildCounts(t *testing.T, db *DB) (full, incr uint64) {
	t.Helper()
	st := db.CheckpointStats()
	return st.FullBuilds, st.IncrementalBuilds
}

func TestIncrementalCheckpointDecision(t *testing.T) {
	db, err := Open(incrOpts(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	incrChurn(t, db, 0)

	// First checkpoint of the incarnation: no prior image, full sweep.
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if full, incr := buildCounts(t, db); full != 1 || incr != 0 {
		t.Fatalf("first checkpoint: full=%d incr=%d, want 1/0", full, incr)
	}
	if db.CheckpointStats().PagesWalked == 0 {
		t.Fatal("full build reported zero pages walked")
	}

	// Sealed continuously since a committed image: incremental from now on.
	incrChurn(t, db, 1)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if full, incr := buildCounts(t, db); full != 1 || incr != 1 {
		t.Fatalf("second checkpoint: full=%d incr=%d, want 1/1", full, incr)
	}
	// The churn between cuts copy-on-wrote pages of the first image; the
	// incremental build must have reclaimed them without walking.
	st := db.CheckpointStats()
	if st.PagesReclaimed == 0 {
		t.Fatal("incremental build reclaimed nothing despite churn")
	}
	walkedAfterFirst := st.PagesWalked

	incrChurn(t, db, 2)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st = db.CheckpointStats()
	if st.IncrementalBuilds != 2 {
		t.Fatalf("third checkpoint not incremental: %+v", st)
	}
	if st.PagesWalked != walkedAfterFirst {
		t.Fatalf("incremental builds walked pages: %d -> %d", walkedAfterFirst, st.PagesWalked)
	}

	// An index rebuild starts a fresh incarnation: full again.
	if err := db.Grant(1, "f", Region{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}, TimeInterval{Start: 0, End: 100}); err != nil {
		t.Fatal(err)
	}
	if err := db.EncodePolicies(); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if full, incr := buildCounts(t, db); full != 2 || incr != 2 {
		t.Fatalf("post-rebuild checkpoint: full=%d incr=%d, want 2/2", full, incr)
	}
}

func TestIncrementalFallsBackAfterAbort(t *testing.T) {
	db, err := Open(incrOpts(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	incrChurn(t, db, 0)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	incrChurn(t, db, 1)

	// Drive a cut+abort through the pipeline internals — exactly what
	// runCheckpoint does when the build phase fails. The consumed ledger
	// is lost, so the next checkpoint must fall back to a full sweep.
	db.mu.Lock()
	img, err := db.ckptCut()
	if err != nil {
		db.mu.Unlock()
		t.Fatal(err)
	}
	db.ckptAbortLocked(img)
	db.mu.Unlock()

	incrChurn(t, db, 2)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if full, incr := buildCounts(t, db); full != 2 || incr != 0 {
		t.Fatalf("post-abort checkpoint: full=%d incr=%d, want 2/0", full, incr)
	}
	// The tracking chain is re-anchored by the committed full build.
	incrChurn(t, db, 3)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if full, incr := buildCounts(t, db); full != 2 || incr != 1 {
		t.Fatalf("post-recovery-of-chain checkpoint: full=%d incr=%d, want 2/1", full, incr)
	}
}

// TestIncrementalCheckpointExactness is the leak/corruption oracle: after a
// run of incremental checkpoints (including one taken with a snapshot
// pinning retired pages), a recovery — whose first checkpoint is forced to
// a full sweep — must find ZERO additional dead pages. If the ledger ever
// under-reported (leak) the sweep would reclaim stragglers; if it
// over-reported (double free) recovery's checked open or the sweep itself
// would fail on a corrupt image.
func TestIncrementalCheckpointExactness(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(incrOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	incrChurn(t, db, 0)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for salt := 1; salt <= 4; salt++ {
		incrChurn(t, db, salt)
		if salt == 2 {
			// Pin the pre-churn image across a checkpoint so the keep-set
			// path (pinned retired pages excluded from the ledger until
			// the snapshot closes) is exercised.
			snap, err := db.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			incrChurn(t, db, 20+salt)
			if err := db.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			snap.Close()
			continue
		}
		if err := db.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	// One more checkpoint now that the snapshot's pins are released: the
	// formerly pinned extents flow through the ledger.
	incrChurn(t, db, 9)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st := db.CheckpointStats()
	if st.IncrementalBuilds < 4 {
		t.Fatalf("expected ≥4 incremental builds, got %+v", st)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery distrusts the ledger by design, so this checkpoint is a
	// full sweep over the final image — and must reclaim nothing, proving
	// every incremental build freed exactly the right pages.
	re, err := OpenExisting(incrOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if err := re.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st = re.CheckpointStats()
	if st.FullBuilds != 1 || st.IncrementalBuilds != 0 {
		t.Fatalf("post-recovery checkpoint not a full sweep: %+v", st)
	}
	if st.PagesReclaimed != 0 {
		t.Fatalf("full sweep reclaimed %d pages the incremental builds missed", st.PagesReclaimed)
	}
	// And the data survived the whole regime.
	for i := 1; i <= 40; i++ {
		got, ok, err := re.Lookup(UserID(i))
		if err != nil || !ok {
			t.Fatalf("u%d lost: ok=%v err=%v", i, ok, err)
		}
		if got != goldenObj(i, 9) {
			t.Fatalf("u%d = %+v, want salt 9", i, got)
		}
	}
}
