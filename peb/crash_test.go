package peb

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/policy"
	"repro/internal/store"
)

// Crash-recovery suite. The workhorse is a brute-force sweep: a scripted
// workload runs against a CrashFS that kills the "process" at every
// possible faultable operation (torn page write, torn WAL append, fsync,
// checkpoint side-file write/rename, ...), the machine "reboots" — both
// pessimistically (unsynced writes lost) and optimistically (unsynced
// writes survived, last one torn) — and the reopened DB must equal the
// oracle at exactly the acknowledged prefix of the workload.

// oracle mirrors the DB's logical state in plain maps.
type oracle struct {
	objs     map[UserID]Object
	policies *policy.Store
}

func newOracle(t *testing.T) *oracle {
	t.Helper()
	space := policy.Region{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}
	ps, err := policy.NewStore(space, 1440)
	if err != nil {
		t.Fatal(err)
	}
	return &oracle{objs: make(map[UserID]Object), policies: ps}
}

func (o *oracle) clone() *oracle {
	objs := make(map[UserID]Object, len(o.objs))
	for k, v := range o.objs {
		objs[k] = v
	}
	return &oracle{objs: objs, policies: o.policies.Clone()}
}

// verify compares a recovered DB against the oracle's logical state:
// population, every object, and the full canonical policy snapshot.
func (o *oracle) verify(db *DB) error {
	if got, want := db.Size(), len(o.objs); got != want {
		return fmt.Errorf("size = %d, want %d", got, want)
	}
	for uid, want := range o.objs {
		got, ok, err := db.Lookup(uid)
		if err != nil {
			return fmt.Errorf("lookup u%d: %v", uid, err)
		}
		if !ok {
			return fmt.Errorf("u%d missing", uid)
		}
		if got != want {
			return fmt.Errorf("u%d = %+v, want %+v", uid, got, want)
		}
	}
	var dbPol, oraclePol bytes.Buffer
	if err := db.SavePolicies(&dbPol); err != nil {
		return fmt.Errorf("save policies: %v", err)
	}
	if err := o.policies.Save(&oraclePol); err != nil {
		return fmt.Errorf("save oracle policies: %v", err)
	}
	if !bytes.Equal(dbPol.Bytes(), oraclePol.Bytes()) {
		return fmt.Errorf("policy state diverged from oracle")
	}
	return nil
}

// scriptOp is one workload step: apply mutates the DB; mirror records the
// same mutation in the oracle (called only when apply succeeded).
type scriptOp struct {
	name   string
	apply  func(db *DB) error
	mirror func(o *oracle)
}

// crashScript is the deterministic workload of the sweep: single-op
// commits, atomic batches, policy changes, an encode rebuild, and
// checkpoints, so fault points land mid-batch, mid-checkpoint, and
// mid-WAL-append.
func crashScript() []scriptOp {
	day := TimeInterval{Start: 0, End: 1440}
	area := func(i int) Region {
		return Region{MinX: float64(i * 10), MinY: 0, MaxX: float64(i*10 + 300), MaxY: 500}
	}
	obj := func(uid, salt int) Object {
		return Object{
			UID: UserID(uid),
			X:   float64((uid*37 + salt*131) % 1000),
			Y:   float64((uid*59 + salt*17) % 1000),
			VX:  float64(uid%5) - 2,
			VY:  float64(salt%5) - 2,
			T:   float64(salt % 50),
		}
	}
	var ops []scriptOp
	add := func(name string, apply func(db *DB) error, mirror func(o *oracle)) {
		ops = append(ops, scriptOp{name: name, apply: apply, mirror: mirror})
	}

	// Relations + grants for a small social graph.
	for i := 1; i <= 4; i++ {
		i := i
		peer := i%4 + 1
		add(fmt.Sprintf("relate %d->%d", i, peer),
			func(db *DB) error { return db.DefineRelation(UserID(i), UserID(peer), "f") },
			func(o *oracle) { o.policies.SetRelation(policy.UserID(i), policy.UserID(peer), "f") })
		add(fmt.Sprintf("grant %d", i),
			func(db *DB) error { return db.Grant(UserID(i), "f", area(i), day) },
			func(o *oracle) {
				_ = o.policies.AddPolicy(policy.UserID(i), policy.Policy{Role: "f", Locr: area(i), Tint: day})
			})
	}
	// Initial population via an atomic batch (bulk-load path). 180 users
	// exceed one leaf's capacity, so the index is multi-level: checkpoint
	// flushes, copy-on-write retirement, and evictions all contribute
	// fault points.
	const population = 180
	add("batch load", func(db *DB) error {
		b := db.NewBatch()
		for i := 1; i <= population; i++ {
			b.Upsert(obj(i, 0))
		}
		return db.Apply(b)
	}, func(o *oracle) {
		for i := 1; i <= population; i++ {
			o.objs[UserID(i)] = obj(i, 0)
		}
	})
	add("encode", func(db *DB) error { return db.EncodePolicies() }, func(o *oracle) {})
	// Single-op commits, spread across the key space so several leaves COW.
	for i := 1; i <= 6; i++ {
		i := i * 29
		add(fmt.Sprintf("upsert %d", i),
			func(db *DB) error { return db.Upsert(obj(i, 1)) },
			func(o *oracle) { o.objs[UserID(i)] = obj(i, 1) })
	}
	add("remove 2", func(db *DB) error { return db.Remove(2) },
		func(o *oracle) { delete(o.objs, 2) })
	add("checkpoint", func(db *DB) error { return db.Checkpoint() }, func(o *oracle) {})
	// Post-checkpoint history exercises replay on top of the image.
	add("grant 5", func(db *DB) error { return db.Grant(5, "f", area(5), day) },
		func(o *oracle) {
			_ = o.policies.AddPolicy(policy.UserID(5), policy.Policy{Role: "f", Locr: area(5), Tint: day})
		})
	add("mixed batch", func(db *DB) error {
		b := db.NewBatch()
		b.Upsert(obj(9, 2))
		b.Remove(3)
		b.Upsert(obj(4, 2))
		b.DefineRelation(9, 1, "f")
		return db.Apply(b)
	}, func(o *oracle) {
		o.objs[9] = obj(9, 2)
		delete(o.objs, 3)
		o.objs[4] = obj(4, 2)
		o.policies.SetRelation(9, 1, "f")
	})
	for i := 5; i <= 8; i++ {
		i := i
		add(fmt.Sprintf("upsert %d late", i),
			func(db *DB) error { return db.Upsert(obj(i, 3)) },
			func(o *oracle) { o.objs[UserID(i)] = obj(i, 3) })
	}
	add("checkpoint 2", func(db *DB) error { return db.Checkpoint() }, func(o *oracle) {})
	add("upsert 10", func(db *DB) error { return db.Upsert(obj(10, 4)) },
		func(o *oracle) { o.objs[10] = obj(10, 4) })
	add("remove 5", func(db *DB) error { return db.Remove(5) },
		func(o *oracle) { delete(o.objs, 5) })

	// --- Incremental-checkpoint fault coverage. -------------------------
	// Under the dead-extent ledger, "checkpoint 2" above is already this
	// script's first incremental build (checkpoint 1 anchored the chain and
	// the tree stayed sealed through the mixed batch). The tail below puts
	// the rest of the new machinery inside the fault universe: churn that
	// feeds the ledger, an incremental build taken while a snapshot pins
	// retired pages (the keep-set filter at cut), the ledger catching the
	// pins after the snapshot closes, and a second incremental build on
	// top. Every WAL append in the script carries the binary codec's
	// versioned header, so torn and lost header writes are swept too.
	add("churn batch", func(db *DB) error {
		b := db.NewBatch()
		for i := 20; i <= 170; i += 5 {
			b.Upsert(obj(i, 5))
		}
		return db.Apply(b)
	}, func(o *oracle) {
		for i := 20; i <= 170; i += 5 {
			o.objs[UserID(i)] = obj(i, 5)
		}
	})
	// The snapshot handle is script-local state: reassigned at "snapshot
	// open" on every (re-)execution, so a crashed run's stale handle is
	// simply overwritten by the next run.
	var snap *Snapshot
	add("snapshot open", func(db *DB) error {
		s, err := db.Snapshot()
		if err != nil {
			return err
		}
		snap = s
		return nil
	}, func(o *oracle) {})
	add("churn under snapshot", func(db *DB) error {
		b := db.NewBatch()
		for i := 21; i <= 171; i += 5 {
			b.Upsert(obj(i, 6))
		}
		b.Remove(44)
		return db.Apply(b)
	}, func(o *oracle) {
		for i := 21; i <= 171; i += 5 {
			o.objs[UserID(i)] = obj(i, 6)
		}
		delete(o.objs, 44)
	})
	add("checkpoint 3 pinned", func(db *DB) error { return db.Checkpoint() }, func(o *oracle) {})
	add("snapshot close", func(db *DB) error {
		if snap == nil {
			return nil
		}
		err := snap.Close()
		snap = nil
		return err
	}, func(o *oracle) {})
	add("upsert 33", func(db *DB) error { return db.Upsert(obj(33, 7)) },
		func(o *oracle) { o.objs[33] = obj(33, 7) })
	add("checkpoint 4", func(db *DB) error { return db.Checkpoint() }, func(o *oracle) {})
	add("upsert 12 final", func(db *DB) error { return db.Upsert(obj(12, 8)) },
		func(o *oracle) { o.objs[12] = obj(12, 8) })
	return ops
}

// crashOpts are the durable options of the sweep: a buffer smaller than
// the tree forces mid-operation evictions, so torn data-page writes are in
// the fault set too.
func crashOpts(fs store.VFS) Options {
	return Options{Path: "db.idx", Durability: DurabilitySync, BufferPages: 4, FS: fs}
}

// runScript applies ops until the first failure, snapshotting the oracle
// after every acknowledged op. Returns the per-prefix oracle states:
// states[i] is the state after i acknowledged ops.
func runScript(t *testing.T, db *DB, ops []scriptOp) (states []*oracle, acked int) {
	t.Helper()
	o := newOracle(t)
	states = append(states, o.clone())
	for _, op := range ops {
		if err := op.apply(db); err != nil {
			return states, acked
		}
		op.mirror(o)
		acked++
		states = append(states, o.clone())
	}
	return states, acked
}

// runBruteForceSweep is the oracle sweep described in the file comment,
// shared by the default-layout and segmented-boundary variants. For every
// fault point and both crash models, recovery must land on the
// acknowledged prefix — or the prefix plus the single in-flight op (fault
// after its log record was written but before its ack).
func runBruteForceSweep(t *testing.T, opts func(fs store.VFS) Options) {
	ops := crashScript()

	// Golden run: no faults; counts the faultable-operation universe.
	golden := store.NewCrashFS()
	db, err := Open(opts(golden))
	if err != nil {
		t.Fatal(err)
	}
	_, acked := runScript(t, db, ops)
	if acked != len(ops) {
		t.Fatalf("golden run acked %d/%d ops", acked, len(ops))
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	total := golden.Ops()
	if total < 50 {
		t.Fatalf("suspiciously few faultable ops: %d", total)
	}

	for _, keepUnsynced := range []bool{false, true} {
		name := "drop-unsynced"
		if keepUnsynced {
			name = "keep-unsynced"
		}
		t.Run(name, func(t *testing.T) {
			for k := 0; k < total; k++ {
				fs := store.NewCrashFS()
				fs.SetFailAfter(k)
				var states []*oracle
				acked := 0
				db, err := Open(opts(fs))
				if err == nil {
					states, acked = runScript(t, db, ops)
				} else {
					o := newOracle(t)
					states = []*oracle{o}
				}
				if !fs.Dead() {
					// Fault point beyond this run's op count (layout
					// nondeterminism): treat as a plain kill at the end.
					fs.CutPower()
				}
				fs.Reboot(keepUnsynced)

				re, err := Open(opts(fs))
				if err != nil {
					t.Fatalf("k=%d: recovery failed: %v", k, err)
				}
				errAt := states[acked].verify(re)
				if errAt != nil && acked < len(ops) {
					// The faulted op may have reached the log before the
					// crash; then the recovered state is the prefix plus it.
					next := states[acked].clone()
					ops[acked].mirror(next)
					if errNext := next.verify(re); errNext == nil {
						errAt = nil
					}
				}
				if errAt != nil {
					t.Fatalf("k=%d acked=%d: recovered state wrong: %v", k, acked, errAt)
				}
				// The recovered DB must accept new commits.
				if err := re.Upsert(Object{UID: 999, X: 1, Y: 2, T: 90}); err != nil {
					t.Fatalf("k=%d: post-recovery upsert: %v", k, err)
				}
				if err := re.Close(); err != nil {
					t.Fatalf("k=%d: close recovered: %v", k, err)
				}
			}
		})
	}
}

func TestCrashRecoveryBruteForce(t *testing.T) {
	runBruteForceSweep(t, crashOpts)
}

// TestCrashRecoveryBruteForceSegmented reruns the sweep with a roll
// threshold small enough that the workload crosses many segment
// boundaries: faults now land on seal fsyncs, on the first append into a
// fresh segment, and between a seal and the next segment's creation —
// under both reboot models. Recovery must additionally cope with a sealed
// segment whose unsynced tail was dropped and with an empty or torn
// youngest segment.
func TestCrashRecoveryBruteForceSegmented(t *testing.T) {
	runBruteForceSweep(t, func(fs store.VFS) Options {
		o := crashOpts(fs)
		o.WALSegmentBytes = 512
		return o
	})
}

// TestCrashCheckpointPairingNonDurable: without a WAL there is no replay
// to reconcile anything, so a crash anywhere inside Checkpoint must leave
// one checkpoint's *complete* state — meta, page image, and policies all
// from the same era. Phase 2 changes both an object and a policy between
// two checkpoints, so any torn pairing (new policies with the old index,
// or vice versa) matches neither oracle and fails verification.
func TestCrashCheckpointPairingNonDurable(t *testing.T) {
	day := TimeInterval{Start: 0, End: 1440}
	all := Region{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}
	opts := func(fs store.VFS) Options {
		return Options{Path: "p.idx", BufferPages: 4, FS: fs}
	}
	// run executes both phases, mirroring into oracles; it stops at the
	// first error. Returns S1 (state at checkpoint 1) and S2 (at 2).
	run := func(t *testing.T, fs *store.CrashFS) (s1, s2 *oracle, c1, c2 bool) {
		o := newOracle(t)
		db, err := Open(opts(fs))
		if err != nil {
			return nil, nil, false, false
		}
		step := func(apply func() error, mirror func()) bool {
			if apply() != nil {
				return false
			}
			mirror()
			return true
		}
		ok := step(func() error { return db.DefineRelation(1, 2, "f") },
			func() { o.policies.SetRelation(1, 2, "f") }) &&
			step(func() error { return db.Grant(1, "f", all, day) },
				func() { _ = o.policies.AddPolicy(1, policy.Policy{Role: "f", Locr: all, Tint: day}) }) &&
			step(func() error {
				b := db.NewBatch()
				for i := 1; i <= 90; i++ {
					b.Upsert(Object{UID: UserID(i), X: float64(i * 11 % 1000), Y: float64(i * 7 % 1000), T: 1})
				}
				return db.Apply(b)
			}, func() {
				for i := 1; i <= 90; i++ {
					o.objs[UserID(i)] = Object{UID: UserID(i), X: float64(i * 11 % 1000), Y: float64(i * 7 % 1000), T: 1}
				}
			})
		if !ok || db.Checkpoint() != nil {
			return nil, nil, false, false
		}
		s1 = o.clone()
		ok = step(func() error { return db.Grant(2, "f", Region{MinX: 1, MinY: 1, MaxX: 9, MaxY: 9}, day) },
			func() {
				_ = o.policies.AddPolicy(2, policy.Policy{Role: "f", Locr: Region{MinX: 1, MinY: 1, MaxX: 9, MaxY: 9}, Tint: day})
			}) &&
			step(func() error { return db.Upsert(Object{UID: 91, X: 3, Y: 4, T: 2}) },
				func() { o.objs[91] = Object{UID: 91, X: 3, Y: 4, T: 2} })
		if !ok || db.Checkpoint() != nil {
			return s1, nil, true, false
		}
		return s1, o.clone(), true, true
	}

	golden := store.NewCrashFS()
	s1, s2, c1, c2 := run(t, golden)
	if !c1 || !c2 {
		t.Fatal("golden run did not complete")
	}
	total := golden.Ops()

	for _, keepUnsynced := range []bool{false, true} {
		name := "drop-unsynced"
		if keepUnsynced {
			name = "keep-unsynced"
		}
		t.Run(name, func(t *testing.T) {
			for k := 0; k < total; k++ {
				fs := store.NewCrashFS()
				fs.SetFailAfter(k)
				_, _, gotC1, _ := run(t, fs)
				if !fs.Dead() {
					fs.CutPower()
				}
				fs.Reboot(keepUnsynced)
				re, err := OpenExisting(opts(fs))
				if err != nil {
					if gotC1 {
						t.Fatalf("k=%d: checkpoint 1 completed but recovery failed: %v", k, err)
					}
					continue // crashed before any checkpoint committed
				}
				err1 := s1.verify(re)
				if err1 != nil {
					if err2 := s2.verify(re); err2 != nil {
						t.Fatalf("k=%d: recovered state matches neither checkpoint (S1: %v; S2: %v)", k, err1, err2)
					}
				}
				re.Close()
			}
		})
	}
}

// TestCrashAfterCheckpointLosesNothing: checkpoint → keep committing →
// power cut without injected fault → reopen: every acknowledged commit is
// present (DurabilitySync acked nothing that was not fsynced).
func TestCrashAfterCheckpointLosesNothing(t *testing.T) {
	ops := crashScript()
	fs := store.NewCrashFS()
	db, err := Open(crashOpts(fs))
	if err != nil {
		t.Fatal(err)
	}
	states, acked := runScript(t, db, ops)
	if acked != len(ops) {
		t.Fatalf("acked %d/%d", acked, len(ops))
	}
	fs.CutPower()
	fs.Reboot(false)
	re, err := Open(crashOpts(fs))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if err := states[acked].verify(re); err != nil {
		t.Fatalf("recovered state wrong: %v", err)
	}
	// And queries behave: a range query over everything returns only
	// policy-visible users, without error.
	if _, err := re.RangeQuery(1, Region{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}, 60); err != nil {
		t.Fatal(err)
	}
}

// TestRecoveryWALOnly: a durable DB that never checkpointed recovers every
// acknowledged commit from the log alone.
func TestRecoveryWALOnly(t *testing.T) {
	fs := store.NewCrashFS()
	db, err := Open(crashOpts(fs))
	if err != nil {
		t.Fatal(err)
	}
	o := newOracle(t)
	for i := 1; i <= 20; i++ {
		obj := Object{UID: UserID(i), X: float64(i * 13 % 1000), Y: float64(i * 29 % 1000), T: 5}
		if err := db.Upsert(obj); err != nil {
			t.Fatal(err)
		}
		o.objs[obj.UID] = obj
	}
	if err := db.Remove(7); err != nil {
		t.Fatal(err)
	}
	delete(o.objs, 7)
	fs.CutPower()
	fs.Reboot(false)
	re, err := Open(crashOpts(fs))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if err := o.verify(re); err != nil {
		t.Fatal(err)
	}
}

// TestRecoveryWithoutDurabilityPreservesLog: reopening a crashed durable
// DB with Durability off must still recover the committed log — and must
// NOT destroy it, because the replayed state exists only in memory until
// a checkpoint re-persists it. Only a checkpoint (whose WalSeq covers
// every replayed record) may retire the log.
func TestRecoveryWithoutDurabilityPreservesLog(t *testing.T) {
	fs := store.NewCrashFS()
	db, err := Open(crashOpts(fs))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 12; i++ {
		if err := db.Upsert(Object{UID: UserID(i), X: float64(i), Y: 2, T: 0}); err != nil {
			t.Fatal(err)
		}
	}
	fs.CutPower()
	fs.Reboot(false)

	plain := crashOpts(fs)
	plain.Durability = DurabilityNone
	re, err := OpenExisting(plain)
	if err != nil {
		t.Fatal(err)
	}
	if re.Size() != 12 {
		t.Fatalf("size = %d, want 12", re.Size())
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	// The acknowledged commits must survive yet another reopen: the log is
	// still their only durable description.
	re2, err := OpenExisting(plain)
	if err != nil {
		t.Fatal(err)
	}
	if re2.Size() != 12 {
		t.Fatalf("second reopen size = %d, want 12", re2.Size())
	}
	// A checkpoint re-persists the state and retires the stale log.
	if err := re2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := re2.Close(); err != nil {
		t.Fatal(err)
	}
	if ok, _ := store.SegmentedWALExists(fs, "db.idx.wal"); ok {
		t.Fatal("stale wal segments survived a covering checkpoint")
	}
	re3, err := OpenExisting(plain)
	if err != nil {
		t.Fatal(err)
	}
	defer re3.Close()
	if re3.Size() != 12 {
		t.Fatalf("post-checkpoint reopen size = %d, want 12", re3.Size())
	}
}

// TestRecoveryGroupCommitConcurrent hammers a grouped-durability DB from
// many goroutines (run under -race), then recovers after a cut and checks
// every acknowledged commit survived.
func TestRecoveryGroupCommitConcurrent(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Path: filepath.Join(dir, "g.idx"), Durability: DurabilityGrouped, BufferPages: 32}
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, per = 6, 30
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				uid := UserID(g*1000 + i + 1)
				if err := db.Upsert(Object{UID: uid, X: float64(g), Y: float64(i), T: 1}); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	st := db.WALStats()
	if st.Appends != goroutines*per {
		t.Fatalf("wal appends = %d, want %d", st.Appends, goroutines*per)
	}
	if st.Syncs == 0 || st.Syncs > st.Appends {
		t.Fatalf("wal syncs = %d with %d appends", st.Syncs, st.Appends)
	}
	// Simulate a crash: no Close, reopen from disk state alone.
	re, err := OpenExisting(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	db.Close() // release the old handles only after recovery proved the disk state
	if re.Size() != goroutines*per {
		t.Fatalf("recovered %d objects, want %d", re.Size(), goroutines*per)
	}
	for g := 0; g < goroutines; g++ {
		for i := 0; i < per; i++ {
			uid := UserID(g*1000 + i + 1)
			got, ok, err := re.Lookup(uid)
			if err != nil || !ok {
				t.Fatalf("u%d missing after recovery (%v)", uid, err)
			}
			want := Object{UID: uid, X: float64(g), Y: float64(i), T: 1}
			if got != want {
				t.Fatalf("u%d = %+v, want %+v", uid, got, want)
			}
		}
	}
}

// TestRecoveryAsyncCleanClose: DurabilityAsync defers fsync, but Close
// syncs, so a clean shutdown loses nothing.
func TestRecoveryAsyncCleanClose(t *testing.T) {
	fs := store.NewCrashFS()
	opts := Options{Path: "a.idx", Durability: DurabilityAsync, FS: fs}
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 10; i++ {
		if err := db.Upsert(Object{UID: UserID(i), X: float64(i), Y: 1, T: 0}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	fs.CutPower()
	fs.Reboot(false) // only durable bytes — Close must have synced them
	re, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Size() != 10 {
		t.Fatalf("size = %d, want 10", re.Size())
	}
}

// TestRecoveryCorruptCheckpoint: damaged on-disk state yields
// ErrCorruptCheckpoint, not a panic.
func TestRecoveryCorruptCheckpoint(t *testing.T) {
	build := func(t *testing.T) (Options, string) {
		dir := t.TempDir()
		opts := Options{Path: filepath.Join(dir, "c.idx")}
		db := mustOpen(t, opts)
		for i := 1; i <= 200; i++ {
			if err := db.Upsert(Object{UID: UserID(i), X: float64(i % 100 * 10), Y: float64(i % 97 * 10), T: 0}); err != nil {
				t.Fatal(err)
			}
		}
		if err := db.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
		return opts, opts.Path
	}

	t.Run("truncated backing file", func(t *testing.T) {
		opts, path := build(t)
		info, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(path, info.Size()/3); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenExisting(opts); !errors.Is(err, ErrCorruptCheckpoint) {
			t.Fatalf("err = %v, want ErrCorruptCheckpoint", err)
		}
	})
	t.Run("garbage meta", func(t *testing.T) {
		opts, path := build(t)
		if err := os.WriteFile(path+".meta", []byte("{not json"), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenExisting(opts); !errors.Is(err, ErrCorruptCheckpoint) {
			t.Fatalf("err = %v, want ErrCorruptCheckpoint", err)
		}
	})
	t.Run("root beyond file", func(t *testing.T) {
		opts, path := build(t)
		meta, err := os.ReadFile(path + ".meta")
		if err != nil {
			t.Fatal(err)
		}
		// Rewrite Root to a page the file cannot hold.
		meta = bytes.Replace(meta, []byte(`"Root":`), []byte(`"Root":900000000,"X":`), 1)
		if err := os.WriteFile(path+".meta", meta, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenExisting(opts); !errors.Is(err, ErrCorruptCheckpoint) {
			t.Fatalf("err = %v, want ErrCorruptCheckpoint", err)
		}
	})
	t.Run("scrambled pages", func(t *testing.T) {
		opts, path := build(t)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i := range data {
			data[i] = byte(i * 7)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenExisting(opts); !errors.Is(err, ErrCorruptCheckpoint) {
			t.Fatalf("err = %v, want ErrCorruptCheckpoint", err)
		}
	})
}

// TestCheckpointRecyclesFreedPages: pages freed by deletions and rebuilds
// are reclaimed at checkpoints and reused after reopen, so steady-state
// churn does not grow the file (the v1 free-list leak).
func TestCheckpointRecyclesFreedPages(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Path: filepath.Join(dir, "r.idx"), Durability: DurabilitySync}
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	load := func(db *DB, salt int) {
		t.Helper()
		b := db.NewBatch()
		for i := 1; i <= 500; i++ {
			b.Upsert(Object{UID: UserID(i), X: float64((i*31 + salt) % 1000), Y: float64((i*67 + salt) % 1000), T: float64(salt)})
		}
		if err := db.Apply(b); err != nil {
			t.Fatal(err)
		}
	}
	load(db, 0)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(opts.Path)
	if err != nil {
		t.Fatal(err)
	}
	base := info.Size()

	// Churn: reopen, rewrite everything, checkpoint, repeat. Every cycle
	// retires the previous pages; the checkpoints must recycle them.
	for cycle := 1; cycle <= 4; cycle++ {
		db, err := OpenExisting(opts)
		if err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		load(db, cycle)
		if err := db.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
	}
	info, err = os.Stat(opts.Path)
	if err != nil {
		t.Fatal(err)
	}
	// COW doubles the transient working set at worst; without recycling the
	// file would grow ~5x here.
	if info.Size() > base*3 {
		t.Fatalf("file grew from %d to %d bytes across churn cycles: freed pages not recycled", base, info.Size())
	}
}
