package peb

import (
	"context"
	"iter"
	"sync"

	"repro/internal/bxtree"
	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/store"
)

// Snapshot is a pinned, immutable read handle over the database: every
// query it answers sees exactly the state that was committed when
// DB.Snapshot returned, no matter how many writes happen meanwhile. A
// client can therefore run a consistent multi-query session — page through
// a region, cross-reference a range query with kNN results, stream a long
// scan — without holding any lock across calls and without blocking
// writers for even a moment.
//
// Mechanics: creation seals the index (subsequent mutations copy-on-write
// instead of rewriting pages the snapshot can reach), deep-copies the
// in-memory key tables, and pins the policy store (policy mutations swap
// in a copy). Creation is O(population) for the table copy; each query
// afterwards is lock-free. Close releases the pin so superseded pages can
// be reclaimed — keep snapshots short-lived on write-heavy workloads, as
// every open snapshot retains the pages it can reach.
//
// A Snapshot is safe for concurrent use by multiple goroutines. Queries
// started after Close return ErrClosed; queries in flight when Close is
// called run to completion against intact pages (the page pin is released
// by the last of them to finish). Snapshots survive DB.Close only for
// memory-backed DBs; EncodePolicies/LoadPolicies rebuild the index, after
// which snapshots of file-backed DBs return disk errors (memory-backed
// snapshots keep working against the superseded tree).
type Snapshot struct {
	db       *DB
	gen      uint64
	version  uint64
	view     *core.View
	policies *policy.Store
	io       *store.IOCounter

	// mu guards the close/in-flight lifecycle: queries acquire a
	// reference, Close marks the snapshot closed, and whichever of them
	// is last — Close with no queries in flight, or the final query to
	// finish — releases the pin on superseded pages. Close therefore
	// never blocks, new queries after Close get ErrClosed, and in-flight
	// queries always complete against intact pages.
	mu       sync.Mutex
	active   int
	closed   bool
	released bool
}

// acquire registers an in-flight query; false means the snapshot closed.
func (s *Snapshot) acquire() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.active++
	return true
}

// release ends an in-flight query, dropping the page pin if this was the
// last query on an already-closed snapshot.
func (s *Snapshot) release() {
	s.mu.Lock()
	s.active--
	last := s.closed && s.active == 0 && !s.released
	if last {
		s.released = true
	}
	s.mu.Unlock()
	if last {
		s.releasePin()
	}
}

// releasePin deregisters the snapshot so the DB can reclaim the pages it
// was holding alive.
func (s *Snapshot) releasePin() {
	s.db.mu.Lock()
	defer s.db.mu.Unlock()
	delete(s.db.snaps, s)
	if !s.db.closed {
		s.db.collectGarbage()
	}
}

// isClosed reports the close flag (for the cheap, page-free accessors).
func (s *Snapshot) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Snapshot returns a pinned, immutable read handle on the current state.
// The caller must Close it; an unclosed snapshot pins superseded index
// pages for the life of the DB.
func (db *DB) Snapshot() (*Snapshot, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil, ErrClosed
	}
	io := &store.IOCounter{}
	s := &Snapshot{
		db:       db,
		gen:      db.gen,
		version:  db.tree.Seal(),
		io:       io,
		policies: db.policies,
	}
	s.view = db.tree.PinnedView(io)
	db.policiesPinned = true
	db.snaps[s] = struct{}{}
	return s, nil
}

// Close releases the snapshot's pin on superseded pages. Close is
// idempotent and never blocks: queries started after Close return
// ErrClosed, while queries already in flight on other goroutines run to
// completion against intact pages — the pin is released by the last of
// them to finish.
func (s *Snapshot) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	last := s.active == 0 && !s.released
	if last {
		s.released = true
	}
	s.mu.Unlock()
	if last {
		s.releasePin()
	}
	return nil
}

// Size returns the number of indexed users at snapshot time.
func (s *Snapshot) Size() int {
	if s.isClosed() {
		return 0
	}
	return s.view.Size()
}

// LeafCount returns the number of B+-tree leaf pages at snapshot time (the
// cost model's Nl, Sec. 6).
func (s *Snapshot) LeafCount() int {
	if s.isClosed() {
		return 0
	}
	return s.view.LeafCount()
}

// IOStats returns the buffer statistics of this snapshot's queries alone:
// page requests issued through this handle, split into buffer hits and
// misses (the paper's I/O metric). Unlike DB.IOStats it is unaffected by
// concurrent sessions sharing the buffer pool.
func (s *Snapshot) IOStats() store.BufferStats { return s.io.Stats() }

// Lookup returns a user's movement state as of snapshot time.
func (s *Snapshot) Lookup(uid UserID) (Object, bool, error) {
	if !s.acquire() {
		return Object{}, false, ErrClosed
	}
	defer s.release()
	return s.view.Get(uid)
}

// Allows evaluates the policy predicate against the snapshot's pinned
// policies: whether viewer may see owner at (x, y) at time t under the
// policies in force at snapshot time.
func (s *Snapshot) Allows(owner, viewer UserID, x, y, t float64) bool {
	if s.isClosed() {
		return false
	}
	return s.policies.Allows(policy.UserID(owner), policy.UserID(viewer), x, y, t)
}

// RangeQuery returns the users inside r at time t whose policies (as of
// snapshot time) let issuer see them there and then.
func (s *Snapshot) RangeQuery(issuer UserID, r Region, t float64) ([]Object, error) {
	if !r.Valid() {
		return nil, &InvalidRegionError{Region: r}
	}
	if !s.acquire() {
		return nil, ErrClosed
	}
	defer s.release()
	w := bxtree.Window{MinX: r.MinX, MinY: r.MinY, MaxX: r.MaxX, MaxY: r.MaxY}
	return s.view.PRQ(issuer, w, t)
}

// RangeQueryCtx streams the privacy-aware range query: qualified users are
// yielded as the index scan discovers them (scan order, not sorted), so a
// consumer can process, rate-limit, or abandon a large result without the
// DB materializing it. ctx is checked between index pages — canceling it
// ends the sequence within one page with ctx.Err() as the final element's
// error. Breaking out of the loop simply stops the scan.
//
//	for o, err := range snap.RangeQueryCtx(ctx, issuer, region, now) {
//	    if err != nil { ... }
//	    handle(o)
//	}
//
// Only Snapshot carries the streaming form: a DB-level stream would have
// to hold the read lock for as long as the consumer kept iterating,
// letting a slow consumer block every writer. A pinned snapshot takes no
// locks, so the consumer can take all day.
func (s *Snapshot) RangeQueryCtx(ctx context.Context, issuer UserID, r Region, t float64) iter.Seq2[Object, error] {
	return func(yield func(Object, error) bool) {
		if !r.Valid() {
			yield(Object{}, &InvalidRegionError{Region: r})
			return
		}
		if !s.acquire() {
			yield(Object{}, ErrClosed)
			return
		}
		defer s.release()
		w := bxtree.Window{MinX: r.MinX, MinY: r.MinY, MaxX: r.MaxX, MaxY: r.MaxY}
		stopped := false
		err := s.view.PRQStream(ctx, issuer, w, t, func(o Object) bool {
			if !yield(o, nil) {
				stopped = true
				return false
			}
			return true
		})
		if err != nil && !stopped {
			yield(Object{}, err)
		}
	}
}

// NearestNeighbors returns the k users nearest to (x, y) at time t visible
// to issuer under the snapshot's pinned policies, sorted by ascending
// distance.
func (s *Snapshot) NearestNeighbors(issuer UserID, x, y float64, k int, t float64) ([]Neighbor, error) {
	return s.NearestNeighborsCtx(context.Background(), issuer, x, y, k, t)
}

// NearestNeighborsCtx is NearestNeighbors with cancellation: ctx is checked
// between index pages, so an expensive search (large k, sparse friends)
// stops within one page of cancellation and returns ctx.Err(). A kNN
// result is a ranking, so there is no streaming form — a prefix would not
// be the k nearest.
func (s *Snapshot) NearestNeighborsCtx(ctx context.Context, issuer UserID, x, y float64, k int, t float64) ([]Neighbor, error) {
	if !s.acquire() {
		return nil, ErrClosed
	}
	defer s.release()
	return s.view.PKNNCtx(ctx, issuer, x, y, k, t)
}
