package peb

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/store"
)

// Tests for the phased checkpoint pipeline: serving during the build
// phase (verified by oracle under -race, not by wall clock — see
// TestCrashCheckpointUnderLoad), call coalescing, the AutoCheckpoint
// maintainer, per-phase statistics, and startup orphan sweeping.

// gateBuild installs a checkpoint hook that blocks the pipeline's build
// phase until release is closed, and signals entered when the build
// starts. Returns the two channels.
func gateBuild(db *DB) (entered chan struct{}, release chan struct{}) {
	entered = make(chan struct{})
	release = make(chan struct{})
	var once sync.Once
	db.ckptHook = func(phase string) {
		if phase != "build" {
			return
		}
		once.Do(func() {
			close(entered)
			<-release
		})
	}
	return entered, release
}

// TestCrashCheckpointUnderLoad is the checkpoint-under-load oracle: a
// checkpoint's build phase is gated open while committers and queriers
// keep working — every commit acknowledged and every query answered
// *while the build is provably in flight* is the non-blocking evidence
// (no wall-clock comparison, which a 1-CPU CI box would make
// meaningless). Afterwards the gate lifts, the checkpoint must commit,
// and a power cut + reboot must recover every acknowledged commit,
// including those from the build window (they live in the WAL tail that
// log rotation preserves).
func TestCrashCheckpointUnderLoad(t *testing.T) {
	fs := store.NewCrashFS()
	opts := Options{Path: "load.idx", Durability: DurabilitySync, BufferPages: 16, FS: fs}
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}

	day := TimeInterval{Start: 0, End: 1440}
	all := Region{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}
	if err := db.DefineRelation(1, 2, "f"); err != nil {
		t.Fatal(err)
	}
	if err := db.Grant(1, "f", all, day); err != nil {
		t.Fatal(err)
	}
	obj := func(uid, salt int) Object {
		return Object{
			UID: UserID(uid),
			X:   float64((uid*37 + salt*131) % 1000),
			Y:   float64((uid*59 + salt*17) % 1000),
			T:   float64(salt % 50),
		}
	}
	oracle := make(map[UserID]Object)
	b := db.NewBatch()
	for i := 1; i <= 200; i++ {
		b.Upsert(obj(i, 0))
	}
	if err := db.Apply(b); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 200; i++ {
		oracle[UserID(i)] = obj(i, 0)
	}
	// First checkpoint ungated, so the gated one below is incremental.
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Churn some pages so the gated checkpoint has work to do.
	for i := 1; i <= 60; i++ {
		if err := db.Upsert(obj(i, 1)); err != nil {
			t.Fatal(err)
		}
		oracle[UserID(i)] = obj(i, 1)
	}

	entered, release := gateBuild(db)
	ckptErr := make(chan error, 1)
	go func() { ckptErr <- db.Checkpoint() }()
	<-entered // the build phase is now provably in flight

	// Commits and queries from several goroutines, all of which must
	// complete while the build is still gated. Each committer owns a
	// disjoint uid range so the oracle merge is deterministic.
	const committers, perC = 3, 25
	var wg sync.WaitGroup
	workErr := make(chan error, committers+2)
	for g := 0; g < committers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perC; i++ {
				uid := 1000 + g*100 + i
				if err := db.Upsert(obj(uid, 2)); err != nil {
					workErr <- fmt.Errorf("upsert u%d during build: %w", uid, err)
					return
				}
			}
		}(g)
	}
	for q := 0; q < 2; q++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				if _, err := db.RangeQuery(2, all, 30); err != nil {
					workErr <- fmt.Errorf("range query during build: %w", err)
					return
				}
				if _, _, err := db.Lookup(UserID(i%200 + 1)); err != nil {
					workErr <- fmt.Errorf("lookup during build: %w", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-workErr:
		t.Fatal(err)
	default:
	}
	select {
	case err := <-ckptErr:
		t.Fatalf("checkpoint finished while its build was gated (err=%v)", err)
	default: // still gated, as it must be
	}
	for g := 0; g < committers; g++ {
		for i := 0; i < perC; i++ {
			uid := 1000 + g*100 + i
			oracle[UserID(uid)] = obj(uid, 2)
		}
	}

	close(release)
	if err := <-ckptErr; err != nil {
		t.Fatalf("gated checkpoint failed: %v", err)
	}
	// Segmented log: publish drops whole covered segments; the uncovered
	// build-window suffix stays in place in its own segments. Nothing is
	// ever rewritten — even with commits racing the build.
	st := db.CheckpointStats()
	if st.WALTailBytesRewritten != 0 {
		t.Errorf("WALTailBytesRewritten = %d, want 0 (segmented log never rewrites)", st.WALTailBytesRewritten)
	}

	// Every acknowledged commit is visible on the live DB...
	for uid, want := range oracle {
		got, ok, err := db.Lookup(uid)
		if err != nil || !ok || got != want {
			t.Fatalf("u%d after checkpoint = %+v %v %v, want %+v", uid, got, ok, err, want)
		}
	}
	// ...and recoverable after a power cut: the checkpoint covers the cut
	// image, the rotated WAL tail covers the build-window commits.
	fs.CutPower()
	fs.Reboot(false)
	re, err := Open(opts)
	if err != nil {
		t.Fatalf("recovery after checkpoint-under-load: %v", err)
	}
	defer re.Close()
	if re.Size() != len(oracle) {
		t.Fatalf("recovered size = %d, want %d", re.Size(), len(oracle))
	}
	for uid, want := range oracle {
		got, ok, err := re.Lookup(uid)
		if err != nil || !ok || got != want {
			t.Fatalf("u%d after recovery = %+v %v %v, want %+v", uid, got, ok, err, want)
		}
	}
}

// TestCheckpointCoalesce: Checkpoint calls that arrive before an
// in-flight pipeline's cut ride it (their commits are inside the image);
// calls that arrive after the cut wait it out and run their own pipeline
// (riding would claim durability for commits the image predates).
func TestCheckpointCoalesce(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.idx")
	db := mustOpen(t, Options{Path: path})
	for i := 1; i <= 100; i++ {
		if err := db.Upsert(Object{UID: UserID(i), X: float64(i * 7 % 1000), Y: float64(i * 13 % 1000), T: 0}); err != nil {
			t.Fatal(err)
		}
	}

	// Pre-cut arrivals coalesce. Holding ckptMu parks the first pipeline
	// before its cut, so riders launched meanwhile are pre-cut for sure.
	db.ckptMu.Lock()
	first := make(chan error, 1)
	go func() { first <- db.Checkpoint() }()
	for { // wait until the first call has claimed the in-flight slot
		db.ckptCoalMu.Lock()
		claimed := db.ckptInflight != nil
		db.ckptCoalMu.Unlock()
		if claimed {
			break
		}
		time.Sleep(time.Millisecond)
	}
	const riders = 3
	var wg sync.WaitGroup
	errs := make([]error, riders)
	for i := 0; i < riders; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = db.Checkpoint()
		}(i)
	}
	time.Sleep(5 * time.Millisecond) // let the riders reach the join
	db.ckptMu.Unlock()
	if err := <-first; err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rider %d: %v", i, err)
		}
	}
	st := db.CheckpointStats()
	if st.Checkpoints != 1 {
		t.Fatalf("Checkpoints = %d, want 1 (pre-cut riders must coalesce)", st.Checkpoints)
	}
	if st.Coalesced != riders {
		t.Fatalf("Coalesced = %d, want %d", st.Coalesced, riders)
	}

	// Post-cut arrivals do NOT coalesce: a call arriving while the build
	// is gated (the cut long taken) must run its own pipeline afterwards.
	entered, release := gateBuild(db)
	gated := make(chan error, 1)
	go func() { gated <- db.Checkpoint() }()
	<-entered
	late := make(chan error, 1)
	go func() { late <- db.Checkpoint() }()
	select {
	case err := <-late:
		t.Fatalf("post-cut Checkpoint returned while the pipeline was gated (err=%v)", err)
	case <-time.After(20 * time.Millisecond):
	}
	close(release)
	if err := <-gated; err != nil {
		t.Fatal(err)
	}
	if err := <-late; err != nil {
		t.Fatal(err)
	}
	st = db.CheckpointStats()
	if st.Checkpoints != 3 {
		t.Fatalf("Checkpoints = %d, want 3 (the post-cut call must run its own pipeline)", st.Checkpoints)
	}
	if st.Coalesced != riders {
		t.Fatalf("Coalesced = %d, want still %d", st.Coalesced, riders)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointStats: the pipeline reports per-phase durations and work
// counters, and the publish-phase segment drop accounts the WAL bytes.
// The small WALSegmentBytes forces the load to seal several segments so
// publish actually has covered segments to remove.
func TestCheckpointStats(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.idx")
	db := mustOpen(t, Options{Path: path, Durability: DurabilitySync, WALSegmentBytes: 4 << 10})
	load := func(salt int) {
		t.Helper()
		for i := 1; i <= 150; i++ {
			if err := db.Upsert(Object{UID: UserID(i), X: float64((i*31 + salt) % 1000), Y: float64((i*67 + salt) % 1000), T: float64(salt)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	load(0)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	load(1) // rewrite everything: COW churn to reclaim + WAL to truncate
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st := db.CheckpointStats()
	if st.Checkpoints != 2 {
		t.Fatalf("Checkpoints = %d, want 2", st.Checkpoints)
	}
	if st.PagesFlushed == 0 {
		t.Error("PagesFlushed = 0, want > 0")
	}
	if st.PagesReclaimed == 0 {
		t.Error("PagesReclaimed = 0, want > 0 (the second checkpoint sweeps the first's quarantine)")
	}
	if st.WALBytesTruncated == 0 {
		t.Error("WALBytesTruncated = 0, want > 0")
	}
	if st.WALSegmentsRemoved == 0 {
		t.Error("WALSegmentsRemoved = 0, want > 0 (publish drops covered sealed segments)")
	}
	// The segmented log never rewrites: publish only deletes whole covered
	// segments, so the rewrite counter is structurally zero.
	if st.WALTailBytesRewritten != 0 {
		t.Errorf("WALTailBytesRewritten = %d, want 0 (segmented log never rewrites)", st.WALTailBytesRewritten)
	}
	ws := db.WALStats()
	if ws.SegmentsSealed == 0 {
		t.Error("WALStats.SegmentsSealed = 0, want > 0 (load crossed the roll threshold)")
	}
	if ws.SegmentsRemoved == 0 {
		t.Error("WALStats.SegmentsRemoved = 0, want > 0")
	}
	if st.LastBuild <= 0 || st.TotalBuild < st.LastBuild {
		t.Errorf("implausible build durations: last %v, total %v", st.LastBuild, st.TotalBuild)
	}
	if st.TotalCut <= 0 || st.TotalPublish <= 0 {
		t.Errorf("implausible cut/publish durations: %v, %v", st.TotalCut, st.TotalPublish)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestAutoCheckpointThreshold: with AutoCheckpoint configured, committing
// past the record threshold checkpoints in the background — no manual
// Checkpoint call — which truncates the log and survives a crash.
func TestAutoCheckpointThreshold(t *testing.T) {
	fs := store.NewCrashFS()
	opts := Options{
		Path:           "auto.idx",
		Durability:     DurabilitySync,
		FS:             fs,
		AutoCheckpoint: AutoCheckpointPolicy{WALRecords: 20},
	}
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	oracle := make(map[UserID]Object)
	for i := 1; i <= 120; i++ {
		o := Object{UID: UserID(i), X: float64(i * 13 % 1000), Y: float64(i * 29 % 1000), T: 5}
		if err := db.Upsert(o); err != nil {
			t.Fatal(err)
		}
		oracle[o.UID] = o
	}
	// The maintainer runs asynchronously; give it a bounded window.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := db.CheckpointStats()
		if st.AutoTriggered >= 1 && st.Checkpoints >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no automatic checkpoint after 120 commits with WALRecords=20 (stats %+v)", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Crash without Close: recovery must see every acknowledged commit,
	// whichever side of the auto checkpoint it landed on.
	fs.CutPower()
	fs.Reboot(false)
	re, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Size() != len(oracle) {
		t.Fatalf("recovered size = %d, want %d", re.Size(), len(oracle))
	}
	for uid, want := range oracle {
		got, ok, err := re.Lookup(uid)
		if err != nil || !ok || got != want {
			t.Fatalf("u%d after recovery = %+v %v %v, want %+v", uid, got, ok, err, want)
		}
	}
}

// TestAutoCheckpointCleanClose: Close stops the maintainer and drains any
// in-flight pipeline; no goroutine leaks, no error.
func TestAutoCheckpointCleanClose(t *testing.T) {
	dir := t.TempDir()
	opts := Options{
		Path:           filepath.Join(dir, "ac.idx"),
		Durability:     DurabilityGrouped,
		AutoCheckpoint: AutoCheckpointPolicy{WALBytes: 1 << 12},
	}
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 200; i++ {
		if err := db.Upsert(Object{UID: UserID(i), X: float64(i), Y: float64(i % 97), T: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil { // idempotent, maintainer already stopped
		t.Fatal(err)
	}
	re, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	if re.Size() != 200 {
		t.Fatalf("size after reopen = %d, want 200", re.Size())
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestAutoCheckpointValidation: the thresholds measure the WAL, so the
// policy without durability is a configuration error.
func TestAutoCheckpointValidation(t *testing.T) {
	_, err := Open(Options{Path: "x.idx", AutoCheckpoint: AutoCheckpointPolicy{WALRecords: 5}, FS: store.NewCrashFS()})
	if !errors.Is(err, ErrBadOptions) {
		t.Fatalf("err = %v, want ErrBadOptions", err)
	}
}

// TestStopTheWorldCheckpointMode: the benchmark baseline still produces a
// correct, recoverable checkpoint.
func TestStopTheWorldCheckpointMode(t *testing.T) {
	fs := store.NewCrashFS()
	opts := Options{Path: "stw.idx", Durability: DurabilitySync, FS: fs, StopTheWorldCheckpoints: true}
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 80; i++ {
		if err := db.Upsert(Object{UID: UserID(i), X: float64(i * 11 % 1000), Y: float64(i * 3 % 1000), T: 2}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	fs.CutPower()
	fs.Reboot(false)
	re, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Size() != 80 {
		t.Fatalf("recovered size = %d, want 80", re.Size())
	}
}

// TestOpenExistingSweepsOrphans: staging files and non-live policies
// snapshots left by a crash between publish and cleanup are removed at
// the next open, instead of leaking forever.
func TestOpenExistingSweepsOrphans(t *testing.T) {
	fs := store.NewCrashFS()
	opts := Options{Path: "o.idx", FS: fs}
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 50; i++ {
		if err := db.Upsert(Object{UID: UserID(i), X: float64(i), Y: float64(i), T: 0}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Plant every species of orphan a crash can leave.
	plant := func(name string) {
		t.Helper()
		f, err := fs.OpenFile(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteAt([]byte("junk"), 0); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	orphans := []string{
		"o.idx.meta.tmp",       // staged meta never renamed
		"o.idx.policies.7.tmp", // policies staging leftover
		"o.idx.policies.99",    // never-committed policies snapshot
		"o.idx.policies",       // superseded legacy snapshot
	}
	for _, name := range orphans {
		plant(name)
	}

	re, err := OpenExisting(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	for _, name := range orphans {
		if ok, _ := fs.Exists(name); ok {
			t.Errorf("orphan %s survived OpenExisting", name)
		}
	}
	// The live snapshot is untouched and the DB works.
	if ok, _ := fs.Exists("o.idx.policies.1"); !ok {
		t.Error("live policies snapshot was swept")
	}
	if re.Size() != 50 {
		t.Fatalf("size = %d, want 50", re.Size())
	}
}

// TestRebuildDrainsCheckpoint: EncodePolicies during a gated build phase
// waits for the pipeline instead of swapping the tree under it.
func TestRebuildDrainsCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "r.idx")
	db := mustOpen(t, Options{Path: path})
	day := TimeInterval{Start: 0, End: 1440}
	all := Region{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}
	if err := db.DefineRelation(1, 2, "f"); err != nil {
		t.Fatal(err)
	}
	if err := db.Grant(1, "f", all, day); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 60; i++ {
		if err := db.Upsert(Object{UID: UserID(i), X: float64(i * 9 % 1000), Y: float64(i * 5 % 1000), T: 1}); err != nil {
			t.Fatal(err)
		}
	}

	entered, release := gateBuild(db)
	ckptErr := make(chan error, 1)
	go func() { ckptErr <- db.Checkpoint() }()
	<-entered

	encodeDone := make(chan error, 1)
	go func() { encodeDone <- db.EncodePolicies() }()
	select {
	case err := <-encodeDone:
		t.Fatalf("EncodePolicies finished during the build phase (err=%v)", err)
	case <-time.After(20 * time.Millisecond):
	}
	close(release)
	if err := <-ckptErr; err != nil {
		t.Fatal(err)
	}
	if err := <-encodeDone; err != nil {
		t.Fatal(err)
	}
	// The rebuilt index still answers and checkpoints.
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}
