package peb

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// Fuzz coverage for the binary WAL record codec (walcodec.go).
//
// Two properties are pinned:
//
//   - Round-trip identity: any record the encoder can produce decodes to a
//     value that re-encodes to the identical bytes. (Byte-level identity
//     sidesteps NaN's x != x and nil-vs-empty slice questions — if the
//     bytes agree, the values agree for every purpose replay has.)
//
//   - Decode totality: arbitrary input NEVER panics the decoder — it
//     either yields a record or an error. Recovery reads these bytes off
//     a crashed disk; a panic would turn recoverable corruption into an
//     unrecoverable process.

// fuzzRecord deterministically builds a walRecord from fuzz-controlled
// raw material, exercising every op kind and field shape.
func fuzzRecord(seq, txnID uint64, txnState uint8, numOps, kindSeed int, f1, f2, f3 float64, role string, blob []byte) walRecord {
	rec := walRecord{Seq: seq, NextSV: f1, TxnID: txnID, TxnState: txnState}
	n := int(uint(numOps) % 9)
	for i := 0; i < n; i++ {
		kind := walOpKind(uint(kindSeed+i) % 7)
		op := walOp{Kind: kind}
		uid := UserID(seq>>16) + UserID(i)
		switch kind {
		case walOpSetSV:
			op.UID, op.SV = uid, f2
		case walOpUpsert:
			op.Obj = Object{UID: uid, X: f1, Y: f2, VX: f3, VY: -f1, T: f3 * 0.5}
		case walOpRemove:
			op.UID = uid
		case walOpRelation:
			op.Own, op.Peer, op.Role = uid, uid+1, Role(role)
		case walOpGrant:
			op.Own, op.Role = uid, Role(role)
			op.Locr = Region{MinX: f1, MinY: f2, MaxX: f1 + 10, MaxY: f2 + 10}
			op.Tint = TimeInterval{Start: f3, End: f3 + 1}
		case walOpEncode:
			n := int(txnID % 5)
			for j := 0; j < n; j++ {
				op.Assign = append(op.Assign, assignRec{UID: uid + UserID(j), SV: f2 + float64(j)})
			}
			op.MaxSV, op.Groups = f3, n
		case walOpLoadPolicies:
			op.Blob = blob
		}
		rec.Ops = append(rec.Ops, op)
	}
	return rec
}

func FuzzWALRecordRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint64(0), uint8(0), 3, 0, 1.5, -2.25, 100.0, "f", []byte("pol"))
	f.Add(uint64(1<<40), uint64(7), uint8(1), 8, 3, math.Inf(1), math.NaN(), math.Copysign(0, -1), "coworker", []byte{})
	f.Add(uint64(0), uint64(1<<63), uint8(3), 7, 6, 1e-300, 1e300, 0.1, "", []byte{0xB6, 0x00, 0xFF})
	f.Fuzz(func(t *testing.T, seq, txnID uint64, txnState uint8, numOps, kindSeed int, f1, f2, f3 float64, role string, blob []byte) {
		rec := fuzzRecord(seq, txnID, txnState, numOps, kindSeed, f1, f2, f3, role, blob)
		enc := appendRecord(nil, &rec)
		dec, err := unmarshalRecord(enc)
		if err != nil {
			t.Fatalf("decode of freshly encoded record failed: %v", err)
		}
		re := appendRecord(nil, &dec)
		if !bytes.Equal(enc, re) {
			t.Fatalf("round trip not identical:\n enc %x\n re  %x", enc, re)
		}
		if dec.Seq != rec.Seq || dec.TxnID != rec.TxnID || dec.TxnState != rec.TxnState || len(dec.Ops) != len(rec.Ops) {
			t.Fatalf("header mismatch: %+v vs %+v", dec, rec)
		}
	})
}

func FuzzWALRecordDecode(f *testing.F) {
	for _, seed := range fuzzDecodeSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		// Must never panic: a record, or an error. (Covers both the binary
		// decoder and the legacy gob fallback dispatch.)
		rec, err := unmarshalRecord(data)
		if err == nil {
			// Whatever decoded must re-encode without panicking too.
			_ = appendRecord(nil, &rec)
		}
	})
}

// fuzzDecodeSeeds builds the decode corpus: valid records of every shape,
// plus systematic corruptions (truncations, flipped bytes, inflated
// counts) and legacy gob bytes for the fallback path.
func fuzzDecodeSeeds() [][]byte {
	var seeds [][]byte
	recs := []walRecord{
		{Seq: 1, NextSV: 2},
		fuzzRecord(7, 3, 1, 8, 0, 1.5, -0.25, 12, "f", []byte("blob")),
		fuzzRecord(1<<50, 1<<62, 3, 7, 4, math.Inf(-1), math.NaN(), 1e308, "c", []byte{0, 1, 2}),
	}
	for i := range recs {
		enc := appendRecord(nil, &recs[i])
		seeds = append(seeds, enc)
		// Truncations at interesting depths.
		for _, cut := range []int{1, 2, len(enc) / 2, len(enc) - 1} {
			if cut < len(enc) {
				seeds = append(seeds, enc[:cut])
			}
		}
		// Flip every byte of the smallest record, one at a time.
		if i == 0 {
			for j := range enc {
				mut := bytes.Clone(enc)
				mut[j] ^= 0xFF
				seeds = append(seeds, mut)
			}
		}
		// Trailing garbage.
		seeds = append(seeds, append(bytes.Clone(enc), 0xDE, 0xAD))
	}
	// Absurd op count (would OOM without the count cap).
	seeds = append(seeds, []byte{0xB6, 0x01, 0x01, 0x02, 0x00, 0x00, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F})
	// Future codec version.
	seeds = append(seeds, []byte{0xB6, 0x63, 0x01})
	// Legacy gob record (fallback path).
	gobRec := walRecord{Seq: 9, NextSV: 4, Ops: []walOp{{Kind: walOpRemove, UID: 3}}}
	if gb, err := marshalRecordGob(&gobRec); err == nil {
		seeds = append(seeds, gb)
		seeds = append(seeds, gb[:len(gb)/2])
	}
	seeds = append(seeds, []byte{}, []byte{0xB6}, []byte{0x00}, []byte{0xFF})
	return seeds
}

// TestWALCodecRejectsCorruption spot-checks decode strictness outside the
// fuzzer: truncation, trailing bytes, unknown kinds, future versions and
// oversized counts must all error (not panic, not succeed).
func TestWALCodecRejectsCorruption(t *testing.T) {
	rec := fuzzRecord(42, 7, 1, 6, 0, 3.5, -1, 9, "f", []byte("pp"))
	enc := appendRecord(nil, &rec)
	if _, err := unmarshalRecord(enc); err != nil {
		t.Fatalf("valid record rejected: %v", err)
	}
	for cut := 1; cut < len(enc); cut++ {
		if _, err := unmarshalRecord(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	if _, err := unmarshalRecord(append(bytes.Clone(enc), 0x00)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	if _, err := unmarshalRecord([]byte{0xB6, 0x02, 0x01}); err == nil {
		t.Fatal("future codec version accepted")
	}
	bad := bytes.Clone(enc)
	bad[len(bad)-1] ^= 0x80 // damage the tail varint
	if _, err := unmarshalRecord(bad); err == nil {
		t.Log("tail flip decoded (can legitimately remain valid); corpus covers systematic flips")
	}
}

// TestWALCodecGobInterop pins the fallback dispatch: a gob-era record and
// its binary re-encoding decode to the same logical record.
func TestWALCodecGobInterop(t *testing.T) {
	rec := fuzzRecord(11, 0, 0, 8, 2, 1.25, 2.5, 3.75, "c", []byte("snapshot"))
	gb, err := marshalRecordGob(&rec)
	if err != nil {
		t.Fatal(err)
	}
	fromGob, err := unmarshalRecord(gb)
	if err != nil {
		t.Fatalf("gob fallback decode: %v", err)
	}
	a := appendRecord(nil, &fromGob)
	b := appendRecord(nil, &rec)
	if !bytes.Equal(a, b) {
		t.Fatal("gob-decoded record re-encodes differently from the original")
	}
}

// TestRegenerateFuzzCorpus writes the decode seed corpus into
// testdata/fuzz/FuzzWALRecordDecode in the native `go test fuzz v1`
// format, so the interesting inputs above are exercised by plain `go
// test` runs on every machine, not only by explicit -fuzz sessions. Run
// with PEB_REGEN_FUZZ=1 when the seed set changes.
func TestRegenerateFuzzCorpus(t *testing.T) {
	if os.Getenv("PEB_REGEN_FUZZ") == "" {
		t.Skip("set PEB_REGEN_FUZZ=1 to rewrite testdata/fuzz/FuzzWALRecordDecode")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzWALRecordDecode")
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, seed := range fuzzDecodeSeeds() {
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(seed)) + ")\n"
		name := filepath.Join(dir, "seed-"+strconv.Itoa(i))
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	t.Logf("wrote %d corpus entries to %s", len(fuzzDecodeSeeds()), dir)
}
