package peb

import (
	"time"

	"repro/internal/core"
	"repro/internal/motion"
	"repro/internal/policy"
	"repro/internal/store"
)

// Batch stages mutations in memory for atomic application by DB.Apply.
// Staging methods never touch the database and never fail; validation
// happens at Apply time. A Batch is not safe for concurrent use (stage
// from one goroutine, or make one batch per goroutine); it is independent
// of any DB until applied and may be applied once or discarded.
//
// Why batch: a bulk load of N objects through per-call Upsert pays N write
// lock round-trips and republishes the query view N times. Apply takes the
// lock once, applies every staged mutation, and republishes once — and it
// is atomic: if any operation fails, the database is left exactly as it
// was, with no partial batch visible to any query (past, concurrent, or
// future).
type Batch struct {
	ops []stagedOp
}

type opKind uint8

const (
	opUpsert opKind = iota
	opRemove
	opRelation
	opGrant
)

type stagedOp struct {
	kind opKind
	obj  Object       // opUpsert
	uid  UserID       // opRemove
	own  UserID       // opRelation, opGrant
	peer UserID       // opRelation
	role Role         // opRelation, opGrant
	locr Region       // opGrant
	tint TimeInterval // opGrant
}

// NewBatch returns an empty staging buffer.
func (db *DB) NewBatch() *Batch { return &Batch{} }

// Len returns the number of staged operations.
func (b *Batch) Len() int { return len(b.ops) }

// Upsert stages a movement update (see DB.Upsert).
func (b *Batch) Upsert(o Object) {
	b.ops = append(b.ops, stagedOp{kind: opUpsert, obj: o})
}

// Remove stages deletion of a user's index entry (see DB.Remove). Removing
// a user with no index entry fails the whole batch at Apply time.
func (b *Batch) Remove(uid UserID) {
	b.ops = append(b.ops, stagedOp{kind: opRemove, uid: uid})
}

// DefineRelation stages a role relation (see DB.DefineRelation).
func (b *Batch) DefineRelation(owner, peer UserID, role Role) {
	b.ops = append(b.ops, stagedOp{kind: opRelation, own: owner, peer: peer, role: role})
}

// Grant stages a location-privacy policy (see DB.Grant).
func (b *Batch) Grant(owner UserID, role Role, locr Region, tint TimeInterval) {
	b.ops = append(b.ops, stagedOp{kind: opGrant, own: owner, role: role, locr: locr, tint: tint})
}

// Apply applies every staged operation atomically: one write-lock
// acquisition, all-or-nothing semantics, one view republish. On error the
// database — index, policies, sequence values, and the published query
// view — is exactly as it was before Apply.
//
// Ordering: index operations take effect in staging order relative to each
// other, as do policy operations; the two groups are independent (policy
// changes influence queries, not the staged index keys), so their relative
// interleaving does not matter. As with DB.Grant/DefineRelation, applied
// policy changes take effect on new sequence values only after
// EncodePolicies.
func (db *DB) Apply(b *Batch) error {
	start := time.Now()
	tok, err := db.applyCommit(b)
	if err != nil {
		return err
	}
	if err := db.walSync(tok); err != nil {
		return err
	}
	db.met.commit.ObserveDuration(time.Since(start))
	return nil
}

func (db *DB) applyCommit(b *Batch) (store.WALToken, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return 0, ErrClosed
	}
	if b == nil || len(b.ops) == 0 {
		return 0, nil
	}
	wops, err := db.applyBatchLocked(b, nil)
	if err != nil {
		return 0, err
	}
	return db.walAppend(wops)
}

// applyBatchLocked is the shared body of Apply and PrepareApply: validate,
// apply the staged operations atomically, and return the operations to log
// (nil without a write-ahead log). The caller holds the write lock. When
// undo is non-nil, the pre-apply state of everything the batch touches is
// captured into it first, so an exact inverse can be applied later
// (Prepared.Abort).
func (db *DB) applyBatchLocked(b *Batch, undo *txnUndo) ([]walOp, error) {
	// Validate cheap, stateless preconditions before touching anything.
	for i := range b.ops {
		if b.ops[i].kind == opGrant && !b.ops[i].locr.Valid() {
			return nil, &InvalidRegionError{Region: b.ops[i].locr}
		}
	}

	// Policy phase: apply to a clone, swap only on full success. (A clone
	// is needed for rollback even when no snapshot pins the store.)
	hasPolicy := false
	for i := range b.ops {
		if b.ops[i].kind == opRelation || b.ops[i].kind == opGrant {
			hasPolicy = true
			break
		}
	}
	ps := db.policies
	if hasPolicy {
		ps = db.policies.Clone()
		for i := range b.ops {
			op := &b.ops[i]
			switch op.kind {
			case opRelation:
				ps.SetRelation(policy.UserID(op.own), policy.UserID(op.peer), op.role)
			case opGrant:
				if err := ps.AddPolicy(policy.UserID(op.own), policy.Policy{Role: op.role, Locr: op.locr, Tint: op.tint}); err != nil {
					return nil, err
				}
			}
		}
	}

	// Index phase: translate staged ops, handing fresh singleton sequence
	// values to users the index has not seen (committed only on success).
	nextSV := db.nextSV
	var ops []core.BatchOp
	svStaged := make(map[UserID]bool)
	for i := range b.ops {
		op := &b.ops[i]
		switch op.kind {
		case opUpsert:
			uid := op.obj.UID
			if _, ok := db.tree.SV(uid); !ok && !svStaged[uid] {
				nextSV += 2 // δ spacing, a fresh singleton anchor (Fig. 5)
				ops = append(ops, core.BatchOp{Kind: core.OpSetSV, UID: motion.UserID(uid), SV: nextSV})
				svStaged[uid] = true
			}
			ops = append(ops, core.BatchOp{Kind: core.OpUpsert, Obj: op.obj})
		case opRemove:
			ops = append(ops, core.BatchOp{Kind: core.OpRemove, UID: motion.UserID(op.uid)})
		}
	}
	// Commit-hook capture happens before any mutation: the first-touch
	// state of every user the index phase writes, in first-appearance
	// order, becomes the notification's touched set (Cur is filled in
	// after the batch applies).
	var touchOrder []UserID
	var touchPrev map[UserID]*Object
	if db.hooksActive() {
		touchPrev = make(map[UserID]*Object)
		for i := range ops {
			var uid UserID
			switch ops[i].Kind {
			case core.OpUpsert:
				uid = UserID(ops[i].Obj.UID)
			case core.OpRemove:
				uid = UserID(ops[i].UID)
			default:
				continue
			}
			if _, seen := touchPrev[uid]; seen {
				continue
			}
			prev, err := db.capturePrev(uid)
			if err != nil {
				return nil, err
			}
			touchPrev[uid] = prev
			touchOrder = append(touchOrder, uid)
		}
	}

	// Undo capture happens before any mutation: the first-touch state of
	// every object the index phase writes, plus the scalars and the
	// pre-clone policy store, are enough to reverse the batch exactly.
	if undo != nil {
		undo.prevNextSV = db.nextSV
		undo.prevEncoded = db.encoded
		if hasPolicy {
			undo.prevPolicies = db.policies
			undo.prevPoliciesPinned = db.policiesPinned
		}
		for uid := range svStaged {
			undo.freshSVs = append(undo.freshSVs, uid)
		}
		undo.prevObjs = make(map[UserID]*Object)
		for i := range ops {
			var uid UserID
			switch ops[i].Kind {
			case core.OpUpsert:
				uid = UserID(ops[i].Obj.UID)
			case core.OpRemove:
				uid = UserID(ops[i].UID)
			default:
				continue
			}
			if _, seen := undo.prevObjs[uid]; seen {
				continue
			}
			prev, ok, err := db.tree.Get(uid)
			if err != nil {
				return nil, err
			}
			if ok {
				undo.prevObjs[uid] = &prev
			} else {
				undo.prevObjs[uid] = nil
			}
		}
		pendingAdd := make(map[UserID]bool)
		noteAdd := func(uid UserID) {
			if !db.users[uid] && !pendingAdd[uid] {
				pendingAdd[uid] = true
				undo.addedUsers = append(undo.addedUsers, uid)
			}
		}
		for i := range b.ops {
			op := &b.ops[i]
			switch op.kind {
			case opUpsert:
				noteAdd(op.obj.UID)
			case opRelation:
				noteAdd(op.own)
				noteAdd(op.peer)
			case opGrant:
				noteAdd(op.own)
			}
		}
	}

	if err := db.tree.ApplyBatch(ops); err != nil {
		// The tree rolled itself back; the published view still describes
		// the (unchanged) committed state, so it is NOT republished, and
		// the cloned policy store is dropped unapplied.
		db.collectGarbage()
		return nil, err
	}

	// Commit: swap policies, register users, publish the new view once.
	if hasPolicy {
		db.policies = ps
		_ = db.tree.SetPolicies(ps) // ps is never nil here
		db.policiesPinned = false
		db.encoded = false
	}
	db.nextSV = nextSV
	for i := range b.ops {
		op := &b.ops[i]
		switch op.kind {
		case opUpsert:
			db.noteUser(op.obj.UID)
		case opRelation:
			db.noteUser(op.own)
			db.noteUser(op.peer)
		case opGrant:
			db.noteUser(op.own)
		}
	}
	db.refreshView()
	db.collectGarbage()

	if db.hooksActive() {
		touched := make([]CommitTouch, 0, len(touchOrder))
		for _, uid := range touchOrder {
			cur, err := db.capturePrev(uid) // post-batch state
			if err != nil {
				// The batch is committed; a failed post-state read only
				// degrades the notification. Fall back to a rescan signal.
				db.fireCommitLocked(nil, true, false)
				touched = nil
				break
			}
			touched = append(touched, CommitTouch{UID: uid, Prev: touchPrev[uid], Cur: cur})
		}
		if touched != nil {
			db.fireCommitLocked(touched, hasPolicy, false)
		}
	}

	// Log the commit: policy operations in staging order, then the index
	// operations with their resolved sequence values (the same list the
	// tree applied, so replay needs no nondeterministic re-derivation).
	var wops []walOp
	if db.wal != nil {
		wops = make([]walOp, 0, len(b.ops)+len(ops))
		for i := range b.ops {
			op := &b.ops[i]
			switch op.kind {
			case opRelation:
				wops = append(wops, walOp{Kind: walOpRelation, Own: op.own, Peer: op.peer, Role: op.role})
			case opGrant:
				wops = append(wops, walOp{Kind: walOpGrant, Own: op.own, Role: op.role, Locr: op.locr, Tint: op.tint})
			}
		}
		for i := range ops {
			op := &ops[i]
			switch op.Kind {
			case core.OpSetSV:
				wops = append(wops, walOp{Kind: walOpSetSV, UID: UserID(op.UID), SV: op.SV})
			case core.OpUpsert:
				wops = append(wops, walOp{Kind: walOpUpsert, Obj: op.Obj})
			case core.OpRemove:
				wops = append(wops, walOp{Kind: walOpRemove, UID: UserID(op.UID)})
			}
		}
	}
	return wops, nil
}
