package peb

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"
)

// buildSmallDB: one issuer (u1) befriended by 60 users granting all-day
// visibility over the whole space, plus 40 strangers.
func buildSmallDB(t *testing.T) *DB {
	t.Helper()
	db := mustOpen(t, Options{})
	day := TimeInterval{Start: 0, End: 1440}
	all := Region{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}
	b := db.NewBatch()
	for i := 2; i <= 61; i++ {
		b.DefineRelation(UserID(i), 1, "f")
		b.Grant(UserID(i), "f", all, day)
	}
	if err := db.Apply(b); err != nil {
		t.Fatal(err)
	}
	if err := db.EncodePolicies(); err != nil {
		t.Fatal(err)
	}
	load := db.NewBatch()
	rng := rand.New(rand.NewSource(2))
	for i := 1; i <= 100; i++ {
		load.Upsert(Object{UID: UserID(i), X: rng.Float64() * 1000, Y: rng.Float64() * 1000, T: 0})
	}
	if err := db.Apply(load); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestOptionsValidation(t *testing.T) {
	for _, opts := range []Options{
		{SpaceSide: -1},
		{BufferPages: -5},
		{MaxSpeed: -0.1},
		{DayLength: -1440},
		{MaxUpdateInterval: -3},
	} {
		if _, err := Open(opts); !errors.Is(err, ErrBadOptions) {
			t.Errorf("Open(%+v) error = %v, want ErrBadOptions", opts, err)
		}
	}
	if _, err := OpenExisting(Options{}); !errors.Is(err, ErrBadOptions) {
		t.Errorf("OpenExisting without Path error = %v, want ErrBadOptions", err)
	}
}

func TestInvalidRegionTyped(t *testing.T) {
	db := mustOpen(t, Options{})
	bad := Region{MinX: 5, MaxX: 1, MinY: 0, MaxY: 1}
	_, err := db.RangeQuery(1, bad, 0)
	if !errors.Is(err, ErrInvalidRegion) {
		t.Fatalf("RangeQuery error = %v, want ErrInvalidRegion", err)
	}
	var re *InvalidRegionError
	if !errors.As(err, &re) || re.Region != bad {
		t.Fatalf("error does not carry the region: %v", err)
	}
	if err := db.Grant(2, "f", bad, TimeInterval{Start: 0, End: 10}); !errors.Is(err, ErrInvalidRegion) {
		t.Fatalf("Grant error = %v, want ErrInvalidRegion", err)
	}
}

func TestUseAfterClose(t *testing.T) {
	for _, opts := range []Options{{}, {Path: filepath.Join(t.TempDir(), "peb.idx")}} {
		db, err := Open(opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := db.Upsert(Object{UID: 1, X: 1, Y: 1}); err != nil {
			t.Fatal(err)
		}
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
		if err := db.Close(); err != nil {
			t.Fatalf("second Close = %v, want nil", err)
		}

		if err := db.Upsert(Object{UID: 2, X: 1, Y: 1}); !errors.Is(err, ErrClosed) {
			t.Errorf("Upsert after close = %v, want ErrClosed", err)
		}
		if _, err := db.RangeQuery(1, Region{MaxX: 10, MaxY: 10}, 0); !errors.Is(err, ErrClosed) {
			t.Errorf("RangeQuery after close = %v, want ErrClosed", err)
		}
		if _, err := db.NearestNeighbors(1, 0, 0, 1, 0); !errors.Is(err, ErrClosed) {
			t.Errorf("NearestNeighbors after close = %v, want ErrClosed", err)
		}
		if _, _, err := db.Lookup(1); !errors.Is(err, ErrClosed) {
			t.Errorf("Lookup after close = %v, want ErrClosed", err)
		}
		if err := db.Remove(1); !errors.Is(err, ErrClosed) {
			t.Errorf("Remove after close = %v, want ErrClosed", err)
		}
		if err := db.DefineRelation(1, 2, "f"); !errors.Is(err, ErrClosed) {
			t.Errorf("DefineRelation after close = %v, want ErrClosed", err)
		}
		if err := db.Grant(1, "f", Region{MaxX: 1, MaxY: 1}, TimeInterval{}); !errors.Is(err, ErrClosed) {
			t.Errorf("Grant after close = %v, want ErrClosed", err)
		}
		if err := db.EncodePolicies(); !errors.Is(err, ErrClosed) {
			t.Errorf("EncodePolicies after close = %v, want ErrClosed", err)
		}
		if err := db.Apply(func() *Batch { b := db.NewBatch(); b.Upsert(Object{UID: 3}); return b }()); !errors.Is(err, ErrClosed) {
			t.Errorf("Apply after close = %v, want ErrClosed", err)
		}
		if _, err := db.Snapshot(); !errors.Is(err, ErrClosed) {
			t.Errorf("Snapshot after close = %v, want ErrClosed", err)
		}
		if db.Size() != 0 {
			t.Errorf("Size after close = %d, want 0", db.Size())
		}
	}
}

// TestSnapshotPinnedAcrossWrites is the acceptance check: a pinned
// Snapshot returns identical results before and after interleaved writes.
func TestSnapshotPinnedAcrossWrites(t *testing.T) {
	db := buildSmallDB(t)
	all := Region{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}

	snap, err := db.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()

	before, err := snap.RangeQuery(1, all, 5)
	if err != nil {
		t.Fatal(err)
	}
	nnBefore, err := snap.NearestNeighbors(1, 500, 500, 7, 5)
	if err != nil {
		t.Fatal(err)
	}
	sizeBefore := snap.Size()

	// Interleave writes of every kind: moves, removals, new users, policy
	// changes.
	rng := rand.New(rand.NewSource(7))
	for i := 1; i <= 100; i++ {
		if err := db.Upsert(Object{UID: UserID(i), X: rng.Float64() * 1000, Y: rng.Float64() * 1000, T: 1}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 2; i <= 20; i++ {
		if err := db.Remove(UserID(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Upsert(Object{UID: 500, X: 500, Y: 500, T: 1}); err != nil {
		t.Fatal(err)
	}
	if err := db.DefineRelation(500, 1, "f"); err != nil {
		t.Fatal(err)
	}
	if err := db.Grant(500, "f", all, TimeInterval{Start: 0, End: 1440}); err != nil {
		t.Fatal(err)
	}

	after, err := snap.RangeQuery(1, all, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(before) {
		t.Fatalf("snapshot PRQ changed across writes: %d → %d results", len(before), len(after))
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("snapshot PRQ result %d changed: %+v → %+v", i, before[i], after[i])
		}
	}
	nnAfter, err := snap.NearestNeighbors(1, 500, 500, 7, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(nnAfter) != len(nnBefore) {
		t.Fatalf("snapshot PkNN changed across writes: %d → %d", len(nnBefore), len(nnAfter))
	}
	for i := range nnBefore {
		if nnBefore[i].Object != nnAfter[i].Object || nnBefore[i].Dist != nnAfter[i].Dist {
			t.Fatalf("snapshot PkNN result %d changed", i)
		}
	}
	if snap.Size() != sizeBefore {
		t.Fatalf("snapshot Size changed: %d → %d", sizeBefore, snap.Size())
	}
	// Policy changes after pinning are invisible too: u500 granted after the
	// snapshot, so the snapshot must not see it as a grantor.
	if snap.Allows(500, 1, 500, 500, 5) {
		t.Error("snapshot sees a policy granted after pinning")
	}
	if !db.Allows(500, 1, 500, 500, 5) {
		t.Error("live DB does not see the new policy")
	}

	// The live DB meanwhile serves the new state.
	live, err := db.RangeQuery(1, all, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(live) == len(before) {
		t.Log("live result count unchanged (possible but unlikely); not fatal")
	}

	// Closing the snapshot lets the DB reclaim superseded pages and keep
	// answering correctly.
	if err := snap.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := snap.RangeQuery(1, all, 5); !errors.Is(err, ErrClosed) {
		t.Fatalf("query on closed snapshot = %v, want ErrClosed", err)
	}
	if snap.Close() != nil {
		t.Fatal("second snapshot Close errored")
	}
	if _, err := db.RangeQuery(1, all, 5); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotIOStats: per-snapshot counters move with the snapshot's own
// queries and stay still for everyone else's.
func TestSnapshotIOStats(t *testing.T) {
	db := buildSmallDB(t)
	all := Region{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}
	s1, err := db.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Close()
	s2, err := db.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()

	if got := s1.IOStats(); got.Accesses() != 0 {
		t.Fatalf("fresh snapshot has %d accesses", got.Accesses())
	}
	if _, err := s1.RangeQuery(1, all, 5); err != nil {
		t.Fatal(err)
	}
	a1, a2 := s1.IOStats().Accesses(), s2.IOStats().Accesses()
	if a1 == 0 {
		t.Error("snapshot query recorded no page accesses")
	}
	if a2 != 0 {
		t.Errorf("idle snapshot recorded %d accesses from another session", a2)
	}
	if s1.LeafCount() <= 0 {
		t.Errorf("LeafCount = %d", s1.LeafCount())
	}
}

// TestBatchAtomicity: a failing op anywhere in the batch leaves the DB —
// results, size, sequence values, view identity — exactly as before.
func TestBatchAtomicity(t *testing.T) {
	db := buildSmallDB(t)
	all := Region{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}

	before, err := db.RangeQuery(1, all, 5)
	if err != nil {
		t.Fatal(err)
	}
	sizeBefore := db.Size()
	swapsBefore := db.ViewSwaps()
	nextSVBefore := db.nextSV

	b := db.NewBatch()
	b.Upsert(Object{UID: 7000, X: 10, Y: 10, T: 1}) // new user: stages an SV
	b.Upsert(Object{UID: 3, X: 700, Y: 700, T: 1})  // move an existing user
	b.Remove(7777)                                  // no such entry: fails the batch
	b.Grant(7000, "f", Region{MaxX: 100, MaxY: 100}, TimeInterval{Start: 0, End: 100})
	if err := db.Apply(b); err == nil {
		t.Fatal("Apply with bad Remove succeeded")
	}

	if got := db.Size(); got != sizeBefore {
		t.Fatalf("failed Apply changed Size: %d → %d", sizeBefore, got)
	}
	if got := db.ViewSwaps(); got != swapsBefore {
		t.Fatalf("failed Apply republished the view: %d → %d swaps", swapsBefore, got)
	}
	if db.nextSV != nextSVBefore {
		t.Fatalf("failed Apply burned sequence values: %g → %g", nextSVBefore, db.nextSV)
	}
	if _, ok := db.tree.SV(7000); ok {
		t.Fatal("failed Apply leaked an SV for the staged new user")
	}
	if _, ok, _ := db.Lookup(7000); ok {
		t.Fatal("failed Apply left the new user indexed")
	}
	if o, ok, _ := db.Lookup(3); !ok || o.X == 700 {
		t.Fatalf("failed Apply left u3 moved: %+v %v", o, ok)
	}
	if db.Allows(7000, 1, 50, 50, 5) {
		t.Fatal("failed Apply left a policy applied")
	}
	after, err := db.RangeQuery(1, all, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(before) {
		t.Fatalf("failed Apply changed query results: %d → %d", len(before), len(after))
	}

	// The same batch without the bad op applies cleanly and counts one swap.
	ok := db.NewBatch()
	ok.Upsert(Object{UID: 7000, X: 10, Y: 10, T: 1})
	ok.Upsert(Object{UID: 3, X: 700, Y: 700, T: 1})
	ok.Grant(7000, "f", Region{MaxX: 100, MaxY: 100}, TimeInterval{Start: 0, End: 100})
	swapsBefore = db.ViewSwaps()
	if err := db.Apply(ok); err != nil {
		t.Fatal(err)
	}
	if got := db.ViewSwaps() - swapsBefore; got != 1 {
		t.Fatalf("successful Apply republished %d times, want 1", got)
	}
	if _, found, _ := db.Lookup(7000); !found {
		t.Fatal("applied batch did not index the new user")
	}
}

// TestApplySingleViewSwap is the acceptance check: a 10k-object batch
// republishes the view exactly once, where per-call loading republishes
// once per object.
func TestApplySingleViewSwap(t *testing.T) {
	db := mustOpen(t, Options{})
	const n = 10_000
	rng := rand.New(rand.NewSource(4))

	b := db.NewBatch()
	for i := 1; i <= n; i++ {
		b.Upsert(Object{UID: UserID(i), X: rng.Float64() * 1000, Y: rng.Float64() * 1000, T: 0})
	}
	swaps := db.ViewSwaps()
	if err := db.Apply(b); err != nil {
		t.Fatal(err)
	}
	if got := db.ViewSwaps() - swaps; got != 1 {
		t.Fatalf("Apply of %d objects republished %d times, want exactly 1", n, got)
	}
	if db.Size() != n {
		t.Fatalf("Size = %d, want %d", db.Size(), n)
	}

	db2 := mustOpen(t, Options{})
	swaps = db2.ViewSwaps()
	for i := 1; i <= 1000; i++ {
		if err := db2.Upsert(Object{UID: UserID(i), X: float64(i % 997), Y: float64(i % 991), T: 0}); err != nil {
			t.Fatal(err)
		}
	}
	if got := db2.ViewSwaps() - swaps; got != 1000 {
		t.Fatalf("1000 Upserts republished %d times, want 1000", got)
	}
}

// TestRangeQueryCtxStreaming: the streaming query yields the same set as
// the eager one and honors cancellation mid-scan.
func TestRangeQueryCtxStreaming(t *testing.T) {
	db := buildSmallDB(t)
	all := Region{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}
	snap, err := db.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()

	eager, err := snap.RangeQuery(1, all, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[UserID]bool, len(eager))
	for _, o := range eager {
		want[o.UID] = true
	}

	got := make(map[UserID]bool)
	for o, err := range snap.RangeQueryCtx(context.Background(), 1, all, 5) {
		if err != nil {
			t.Fatal(err)
		}
		got[o.UID] = true
	}
	if len(got) != len(want) {
		t.Fatalf("stream yielded %d users, eager %d", len(got), len(want))
	}
	for uid := range want {
		if !got[uid] {
			t.Fatalf("stream missing u%d", uid)
		}
	}

	// Early break stops cleanly.
	n := 0
	for _, err := range snap.RangeQueryCtx(context.Background(), 1, all, 5) {
		if err != nil {
			t.Fatal(err)
		}
		n++
		if n == 2 {
			break
		}
	}
	if n != 2 {
		t.Fatalf("broke after %d results, want 2", n)
	}

	// Cancellation mid-scan surfaces ctx.Err() as the final element.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	n = 0
	var lastErr error
	for _, err := range snap.RangeQueryCtx(ctx, 1, all, 5) {
		if err != nil {
			lastErr = err
			continue
		}
		n++
		if n == 1 {
			cancel()
		}
	}
	if !errors.Is(lastErr, context.Canceled) {
		t.Fatalf("canceled stream final error = %v, want context.Canceled", lastErr)
	}
	if n >= len(eager) {
		t.Fatalf("cancellation did not cut the stream short (%d of %d yielded)", n, len(eager))
	}

	// Pre-canceled context yields only the error.
	pre, preCancel := context.WithCancel(context.Background())
	preCancel()
	n = 0
	lastErr = nil
	for _, err := range snap.RangeQueryCtx(pre, 1, all, 5) {
		if err != nil {
			lastErr = err
		} else {
			n++
		}
	}
	if n != 0 || !errors.Is(lastErr, context.Canceled) {
		t.Fatalf("pre-canceled stream yielded %d results, err %v", n, lastErr)
	}

	// NearestNeighborsCtx: pre-canceled context is rejected.
	if _, err := snap.NearestNeighborsCtx(pre, 1, 500, 500, 3, 5); !errors.Is(err, context.Canceled) {
		t.Fatalf("NearestNeighborsCtx(pre-canceled) = %v, want context.Canceled", err)
	}
	if _, err := snap.NearestNeighborsCtx(context.Background(), 1, 500, 500, 3, 5); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotSurvivesDBWritesFileBacked: copy-on-write works on the
// file-backed disk too.
func TestSnapshotFileBacked(t *testing.T) {
	path := filepath.Join(t.TempDir(), "peb.idx")
	db := mustOpen(t, Options{Path: path})
	day := TimeInterval{Start: 0, End: 1440}
	all := Region{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}
	if err := db.DefineRelation(2, 1, "f"); err != nil {
		t.Fatal(err)
	}
	if err := db.Grant(2, "f", all, day); err != nil {
		t.Fatal(err)
	}
	if err := db.EncodePolicies(); err != nil {
		t.Fatal(err)
	}
	b := db.NewBatch()
	for i := 1; i <= 300; i++ {
		b.Upsert(Object{UID: UserID(i), X: float64(i%100) * 10, Y: float64(i%97) * 10, T: 0})
	}
	if err := db.Apply(b); err != nil {
		t.Fatal(err)
	}
	snap, err := db.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()
	before, err := snap.RangeQuery(1, all, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 300; i++ {
		if err := db.Upsert(Object{UID: UserID(i), X: float64(i%89) * 11, Y: float64(i%83) * 12, T: 1}); err != nil {
			t.Fatal(err)
		}
	}
	after, err := snap.RangeQuery(1, all, 1)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(before) != fmt.Sprint(after) {
		t.Fatal("file-backed snapshot changed across writes")
	}
}

// TestGarbageReclaimed: closing the last snapshot returns the DB to
// in-place mutation and releases retired pages (no unbounded growth).
func TestGarbageReclaimed(t *testing.T) {
	db := buildSmallDB(t)
	md, ok := db.disk.(interface{ NumPages() int })
	if !ok {
		t.Fatal("mem disk expected")
	}
	base := md.NumPages()

	snap, err := db.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for i := 1; i <= 100; i++ {
		if err := db.Upsert(Object{UID: UserID(i), X: rng.Float64() * 1000, Y: rng.Float64() * 1000, T: 1}); err != nil {
			t.Fatal(err)
		}
	}
	grown := md.NumPages()
	if grown <= base {
		t.Logf("page count did not grow under COW (%d → %d); tree fits in place", base, grown)
	}
	if err := snap.Close(); err != nil {
		t.Fatal(err)
	}
	if got := len(db.garbage); got != 0 {
		t.Fatalf("%d garbage batches left after last snapshot closed", got)
	}
	// Subsequent writes run unsealed: no new garbage accumulates.
	for i := 1; i <= 100; i++ {
		if err := db.Upsert(Object{UID: UserID(i), X: rng.Float64() * 1000, Y: rng.Float64() * 1000, T: 2}); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(db.garbage); got != 0 {
		t.Fatalf("unsealed writes produced %d garbage batches", got)
	}
	settled := md.NumPages()
	if settled > grown {
		t.Fatalf("pages grew after reclamation: %d → %d", grown, settled)
	}
}

// TestSnapshotCloseDuringQuery: Close while a stream is mid-iteration
// must not yank pages out from under it — the in-flight query completes
// with results identical to an uninterrupted run, the pin is released by
// the query's end, and only queries started after Close see ErrClosed.
func TestSnapshotCloseDuringQuery(t *testing.T) {
	db := buildSmallDB(t)
	all := Region{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}
	snap, err := db.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	want, err := snap.RangeQuery(1, all, 5)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(31))
	got := 0
	for o, err := range snap.RangeQueryCtx(context.Background(), 1, all, 5) {
		if err != nil {
			t.Fatal(err)
		}
		got++
		if got == 1 {
			// Close mid-iteration, then churn the DB so any prematurely
			// freed page would be reallocated with new contents.
			if err := snap.Close(); err != nil {
				t.Fatal(err)
			}
			for i := 1; i <= 100; i++ {
				if err := db.Upsert(Object{UID: UserID(i), X: rng.Float64() * 1000, Y: rng.Float64() * 1000, T: 2}); err != nil {
					t.Fatal(err)
				}
			}
		}
		_ = o
	}
	if got != len(want) {
		t.Fatalf("in-flight stream yielded %d results across Close, want %d", got, len(want))
	}
	// The pin is gone once the query finished: garbage drains and new
	// queries are rejected.
	if _, err := snap.RangeQuery(1, all, 5); !errors.Is(err, ErrClosed) {
		t.Fatalf("query after Close = %v, want ErrClosed", err)
	}
	db.mu.Lock()
	leftover := len(db.garbage)
	db.mu.Unlock()
	if leftover != 0 {
		t.Fatalf("%d garbage batches left after last in-flight query finished", leftover)
	}
}

// TestSnapshotAcrossEncode: a snapshot taken before EncodePolicies keeps
// answering from the superseded (memory-backed) tree.
func TestSnapshotAcrossEncode(t *testing.T) {
	db := buildSmallDB(t)
	all := Region{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}
	snap, err := db.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()
	before, err := snap.RangeQuery(1, all, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.EncodePolicies(); err != nil {
		t.Fatal(err)
	}
	after, err := snap.RangeQuery(1, all, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(before) != len(after) {
		t.Fatalf("snapshot changed across re-encode: %d → %d", len(before), len(after))
	}
	// And the new generation supports new snapshots.
	s2, err := db.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	live, err := s2.RangeQuery(1, all, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(live) != len(before) {
		t.Fatalf("post-encode snapshot disagrees: %d vs %d", len(live), len(before))
	}
}
