package repro

import (
	"testing"

	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/exp"
)

// End-to-end guards on the paper's headline claims, at a size small enough
// for CI. These complement the per-package unit tests: they run the real
// experiment harness and assert the *relationships* the paper reports.

func integrationTestbed(t *testing.T) *exp.Testbed {
	t.Helper()
	cfg := exp.DefaultConfig()
	cfg.Workload.NumUsers = 8_000
	cfg.Workload.PoliciesPerUser = 20
	cfg.Workload.GroupSize = 0
	cfg.QueryCount = 100
	tb, err := exp.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

// The PEB-tree must beat the spatial baseline on both query types at the
// default setting (the paper's central claim).
func TestHeadlinePEBBeatsBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("builds an 8K-user testbed")
	}
	tb := integrationTestbed(t)
	prq := tb.DS.GenPRQueries(100, tb.Cfg.WindowSide, tb.Cfg.QueryTime)
	m, err := tb.MeasurePRQ(prq)
	if err != nil {
		t.Fatal(err)
	}
	if m.PEB >= m.Spatial {
		t.Errorf("PRQ: PEB %.1f I/Os not below baseline %.1f", m.PEB, m.Spatial)
	}
	knn := tb.DS.GenKNNQueries(100, tb.Cfg.K, tb.Cfg.QueryTime)
	m, err = tb.MeasurePKNN(knn)
	if err != nil {
		t.Fatal(err)
	}
	if m.PEB >= m.Spatial {
		t.Errorf("PkNN: PEB %.1f I/Os not below baseline %.1f", m.PEB, m.Spatial)
	}
}

// PEB PRQ cost must be insensitive to the window size while the baseline
// grows (Fig. 15a's shape).
func TestWindowInsensitivity(t *testing.T) {
	if testing.Short() {
		t.Skip("builds an 8K-user testbed")
	}
	tb := integrationTestbed(t)
	measure := func(side float64) exp.Measured {
		qs := tb.DS.GenPRQueries(100, side, tb.Cfg.QueryTime)
		m, err := tb.MeasurePRQ(qs)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	small := measure(100)
	large := measure(800)
	if large.Spatial < small.Spatial*1.5 {
		t.Errorf("baseline should grow with window: %.1f → %.1f", small.Spatial, large.Spatial)
	}
	if large.PEB > small.PEB*1.5 {
		t.Errorf("PEB should stay near-flat: %.1f → %.1f", small.PEB, large.PEB)
	}
}

// The SV-first key layout must beat the ZV-first ablation layout on PRQ
// (the Sec. 5.2 design claim).
func TestKeyOrderAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("builds an 8K-user testbed")
	}
	tb := integrationTestbed(t)
	zv, err := tb.NewPEBVariant(func(c *core.Config) { c.Layout = core.ZVFirst })
	if err != nil {
		t.Fatal(err)
	}
	qs := tb.DS.GenPRQueries(100, tb.Cfg.WindowSide, tb.Cfg.QueryTime)
	svIO, err := exp.MeasurePRQOn(tb.PEB, qs)
	if err != nil {
		t.Fatal(err)
	}
	zvIO, err := exp.MeasurePRQOn(zv, qs)
	if err != nil {
		t.Fatal(err)
	}
	if svIO >= zvIO {
		t.Errorf("SV-first (%.1f I/Os) not below ZV-first (%.1f)", svIO, zvIO)
	}
}

// The calibrated cost model must track measured PRQ cost within a factor
// of two across a θ sweep (Fig. 19's "tracks the actual cost quite well").
func TestCostModelTracksMeasured(t *testing.T) {
	if testing.Short() {
		t.Skip("builds several testbeds")
	}
	base := exp.DefaultConfig()
	base.Workload.PoliciesPerUser = 20
	base.Workload.GroupSize = 0
	base.QueryCount = 100

	sample := func(users int) costmodel.Sample {
		cfg := base
		cfg.Workload.NumUsers = users
		tb, err := exp.Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		qs := tb.DS.GenPRQueries(cfg.QueryCount, cfg.WindowSide, cfg.QueryTime)
		io, err := exp.MeasurePRQOn(tb.PEB, qs)
		if err != nil {
			t.Fatal(err)
		}
		return costmodel.Sample{
			Params: costmodel.Params{N: users, Np: cfg.Workload.PoliciesPerUser,
				Theta: cfg.Workload.GroupingFactor, Nl: tb.PEB.LeafCount(), L: cfg.Workload.Space},
			IO: io,
		}
	}
	model, err := costmodel.Calibrate(sample(4_000), sample(10_000))
	if err != nil {
		t.Fatal(err)
	}
	for _, theta := range []float64{0.4, 0.8} {
		cfg := base
		cfg.Workload.NumUsers = 8_000
		cfg.Workload.GroupingFactor = theta
		tb, err := exp.Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		qs := tb.DS.GenPRQueries(cfg.QueryCount, cfg.WindowSide, cfg.QueryTime)
		measured, err := exp.MeasurePRQOn(tb.PEB, qs)
		if err != nil {
			t.Fatal(err)
		}
		est, err := model.Cost(costmodel.Params{N: 8_000, Np: 20, Theta: theta,
			Nl: tb.PEB.LeafCount(), L: cfg.Workload.Space})
		if err != nil {
			t.Fatal(err)
		}
		if est < measured/2 || est > measured*2 {
			t.Errorf("θ=%g: model %.1f vs measured %.1f (off by >2×)", theta, est, measured)
		}
	}
}
