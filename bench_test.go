// Benchmarks: one per paper table/figure plus micro-benchmarks of the core
// operations. The per-figure benchmarks run the same experiment code as
// cmd/pebbench at a small scale and export the measured mean I/O per query
// as custom metrics (ios_col0, ios_col1, ...), so `go test -bench=.` both
// exercises every experiment path and tracks the headline numbers.
//
// Full paper-scale figures are regenerated with:
//
//	go run ./cmd/pebbench -exp <id> -scale 1
package repro

import (
	"context"
	"sync"
	"testing"

	"repro/internal/exp"
	"repro/internal/workload"
	"repro/peb"
)

// benchScale keeps each figure benchmark to a few seconds: populations
// floor at 1000 users and 30 queries per data point.
var benchOptions = exp.Options{Scale: 0.02, QueryCount: 30, Parallel: 4, Seed: 1}

// runExperiment executes one registered experiment and reports the mean of
// every column as a custom metric.
func runExperiment(b *testing.B, id string) {
	e, ok := exp.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tbl, err := e.Run(benchOptions)
		if err != nil {
			b.Fatal(err)
		}
		for c, name := range tbl.Columns {
			sum := 0.0
			for _, row := range tbl.Rows {
				sum += row.Vals[c]
			}
			b.ReportMetric(sum/float64(len(tbl.Rows)), name)
		}
	}
}

// --- One benchmark per paper table/figure -----------------------------------

func BenchmarkFig11aPreprocessUsers(b *testing.B)    { runExperiment(b, "fig11a") }
func BenchmarkFig11bPreprocessPolicies(b *testing.B) { runExperiment(b, "fig11b") }
func BenchmarkFig12aPRQUsers(b *testing.B)           { runExperiment(b, "fig12a") }
func BenchmarkFig12bPkNNUsers(b *testing.B)          { runExperiment(b, "fig12b") }
func BenchmarkFig13aPRQPolicies(b *testing.B)        { runExperiment(b, "fig13a") }
func BenchmarkFig13bPkNNPolicies(b *testing.B)       { runExperiment(b, "fig13b") }
func BenchmarkFig14aPRQGrouping(b *testing.B)        { runExperiment(b, "fig14a") }
func BenchmarkFig14bPkNNGrouping(b *testing.B)       { runExperiment(b, "fig14b") }
func BenchmarkFig15aPRQWindow(b *testing.B)          { runExperiment(b, "fig15a") }
func BenchmarkFig15bPkNNK(b *testing.B)              { runExperiment(b, "fig15b") }
func BenchmarkFig16aPRQNetwork(b *testing.B)         { runExperiment(b, "fig16a") }
func BenchmarkFig16bPkNNNetwork(b *testing.B)        { runExperiment(b, "fig16b") }
func BenchmarkFig17aPRQSpeed(b *testing.B)           { runExperiment(b, "fig17a") }
func BenchmarkFig17bPkNNSpeed(b *testing.B)          { runExperiment(b, "fig17b") }
func BenchmarkFig18aPRQUpdates(b *testing.B)         { runExperiment(b, "fig18a") }
func BenchmarkFig18bPkNNUpdates(b *testing.B)        { runExperiment(b, "fig18b") }
func BenchmarkFig19aCostModelUsers(b *testing.B)     { runExperiment(b, "fig19a") }
func BenchmarkFig19bCostModelPolicies(b *testing.B)  { runExperiment(b, "fig19b") }
func BenchmarkFig19cCostModelGrouping(b *testing.B)  { runExperiment(b, "fig19c") }
func BenchmarkAblationKeyOrder(b *testing.B)         { runExperiment(b, "ablation-keyorder") }
func BenchmarkAblationSearchOrder(b *testing.B)      { runExperiment(b, "ablation-searchorder") }
func BenchmarkAblationCurve(b *testing.B)            { runExperiment(b, "ablation-curve") }
func BenchmarkScaling(b *testing.B)                  { runExperiment(b, "scaling") }
func BenchmarkBulkloadExp(b *testing.B)              { runExperiment(b, "bulkload") }

// --- Micro-benchmarks of the core operations --------------------------------

// sharedTestbed lazily builds one mid-size testbed reused by the operation
// benchmarks so setup cost is paid once, outside the timed region.
var (
	tbOnce sync.Once
	tbVal  *exp.Testbed
	tbErr  error
)

func sharedTestbed(b *testing.B) *exp.Testbed {
	tbOnce.Do(func() {
		cfg := exp.DefaultConfig()
		cfg.Workload.NumUsers = 10_000
		cfg.Workload.PoliciesPerUser = 20
		cfg.Workload.GroupSize = 0
		tbVal, tbErr = exp.Build(cfg)
	})
	if tbErr != nil {
		b.Fatal(tbErr)
	}
	return tbVal
}

func BenchmarkPEBInsert(b *testing.B) {
	tb := sharedTestbed(b)
	objs := tb.DS.Objects
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Re-inserting an existing user is delete+insert, the update path.
		o := objs[i%len(objs)]
		o.T += float64(i/len(objs)) * 0.001
		if err := tb.PEB.Insert(o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPEBPRQ(b *testing.B) {
	tb := sharedTestbed(b)
	qs := tb.DS.GenPRQueries(256, exp.DefaultWindowSide, exp.DefaultQueryTime)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := qs[i%len(qs)]
		if _, err := tb.PEB.PRQ(q.Issuer, q.W, q.T); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPEBPkNN(b *testing.B) {
	tb := sharedTestbed(b)
	qs := tb.DS.GenKNNQueries(256, exp.DefaultK, exp.DefaultQueryTime)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := qs[i%len(qs)]
		if _, err := tb.PEB.PKNN(q.Issuer, q.X, q.Y, q.K, q.T); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSpatialPRQ(b *testing.B) {
	tb := sharedTestbed(b)
	qs := tb.DS.GenPRQueries(256, exp.DefaultWindowSide, exp.DefaultQueryTime)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := qs[i%len(qs)]
		if _, err := tb.Spatial.PRQ(q.Issuer, q.W, q.T); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSpatialPkNN(b *testing.B) {
	tb := sharedTestbed(b)
	qs := tb.DS.GenKNNQueries(256, exp.DefaultK, exp.DefaultQueryTime)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := qs[i%len(qs)]
		if _, err := tb.Spatial.PKNN(q.Issuer, q.X, q.Y, q.K, q.T); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPolicyEncoding(b *testing.B) {
	cfg := workload.DefaultConfig()
	cfg.NumUsers = 5_000
	cfg.PoliciesPerUser = 20
	cfg.GroupSize = 0
	ds, err := workload.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ds.Assign(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWorkloadGenerate(b *testing.B) {
	cfg := workload.DefaultConfig()
	cfg.NumUsers = 5_000
	cfg.PoliciesPerUser = 20
	cfg.GroupSize = 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		if _, err := workload.Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Parallel query benchmarks (peb.DB read path) ----------------------------

// sharedDB lazily builds one peb.DB (public API, RWMutex + snapshot read
// path) reused by the parallel benchmarks, with an index-resident buffer so
// the numbers reflect lock scaling rather than eviction churn.
var (
	dbOnce sync.Once
	dbVal  *peb.DB
	dbQs   []workload.PRQuery
	dbKNN  []workload.KNNQuery
	dbErr  error
)

func sharedDB(b *testing.B) (*peb.DB, []workload.PRQuery, []workload.KNNQuery) {
	dbOnce.Do(func() {
		cfg := exp.DefaultConfig()
		cfg.Workload.NumUsers = 10_000
		cfg.Workload.PoliciesPerUser = 20
		cfg.Workload.GroupSize = 0
		var ds *workload.Dataset
		dbVal, ds, dbErr = exp.BuildDB(cfg, 0)
		if dbErr != nil {
			return
		}
		dbQs = ds.GenPRQueries(256, exp.DefaultWindowSide, exp.DefaultQueryTime)
		dbKNN = ds.GenKNNQueries(256, exp.DefaultK, exp.DefaultQueryTime)
	})
	if dbErr != nil {
		b.Fatal(dbErr)
	}
	return dbVal, dbQs, dbKNN
}

// BenchmarkDBRangeQueryParallel drives concurrent RangeQuery calls through
// the RWMutex read path with b.RunParallel; compare its per-op time against
// BenchmarkDBRangeQuerySerialized to see the concurrency win (the ratio
// approaches the core count on parallel hardware; on one core they tie).
// Run with -cpu 8 to fix the goroutine count.
func BenchmarkDBRangeQueryParallel(b *testing.B) {
	db, qs, _ := sharedDB(b)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			q := qs[i%len(qs)]
			i++
			r := peb.Region{MinX: q.W.MinX, MinY: q.W.MinY, MaxX: q.W.MaxX, MaxY: q.W.MaxY}
			if _, err := db.RangeQuery(q.Issuer, r, q.T); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDBRangeQuerySerialized is the single-mutex baseline: the same
// concurrent load, but every query serialized behind one global lock — the
// DB's behavior before the RWMutex/snapshot read path.
func BenchmarkDBRangeQuerySerialized(b *testing.B) {
	db, qs, _ := sharedDB(b)
	var mu sync.Mutex
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			q := qs[i%len(qs)]
			i++
			r := peb.Region{MinX: q.W.MinX, MinY: q.W.MinY, MaxX: q.W.MaxX, MaxY: q.W.MaxY}
			mu.Lock()
			_, err := db.RangeQuery(q.Issuer, r, q.T)
			mu.Unlock()
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDBNearestNeighborsParallel is the PkNN counterpart of
// BenchmarkDBRangeQueryParallel.
func BenchmarkDBNearestNeighborsParallel(b *testing.B) {
	db, _, qs := sharedDB(b)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			q := qs[i%len(qs)]
			i++
			if _, err := db.NearestNeighbors(q.Issuer, q.X, q.Y, q.K, q.T); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Write-batching and snapshot benchmarks (handle API) ---------------------

// BenchmarkBulkLoad compares loading 10k objects into a fresh DB through
// the two write paths the API offers. ApplyBatch must beat PerCallUpsert:
// the batch is key-sorted and bottom-up bulk-built (one page write per
// leaf), while per-call inserts descend, split, and republish per object.
//
//	go test -bench BenchmarkBulkLoad -run xxx
func BenchmarkBulkLoad(b *testing.B) {
	cfg := workload.DefaultConfig()
	cfg.NumUsers = 10_000
	cfg.PoliciesPerUser = 0
	cfg.GroupSize = 0
	ds, err := workload.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}

	b.Run("PerCallUpsert", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			db, err := peb.Open(peb.Options{SpaceSide: cfg.Space, MaxSpeed: cfg.MaxSpeed})
			if err != nil {
				b.Fatal(err)
			}
			for _, o := range ds.Objects {
				if err := db.Upsert(o); err != nil {
					b.Fatal(err)
				}
			}
			if swaps := db.ViewSwaps(); swaps < uint64(len(ds.Objects)) {
				b.Fatalf("per-call load did %d view swaps, want >= %d", swaps, len(ds.Objects))
			}
			db.Close()
		}
		b.ReportMetric(float64(len(ds.Objects))*float64(b.N)/b.Elapsed().Seconds(), "objs/s")
	})
	b.Run("ApplyBatch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			db, err := peb.Open(peb.Options{SpaceSide: cfg.Space, MaxSpeed: cfg.MaxSpeed})
			if err != nil {
				b.Fatal(err)
			}
			swaps := db.ViewSwaps()
			batch := db.NewBatch()
			for _, o := range ds.Objects {
				batch.Upsert(o)
			}
			if err := db.Apply(batch); err != nil {
				b.Fatal(err)
			}
			if got := db.ViewSwaps() - swaps; got != 1 {
				b.Fatalf("Apply did %d view swaps, want 1", got)
			}
			db.Close()
		}
		b.ReportMetric(float64(len(ds.Objects))*float64(b.N)/b.Elapsed().Seconds(), "objs/s")
	})
}

// BenchmarkSnapshotRangeQuery measures the pinned-snapshot read path: no
// lock acquisition per query, per-session I/O counters. Compare with
// BenchmarkDBRangeQueryParallel (read-locked one-shot path).
func BenchmarkSnapshotRangeQuery(b *testing.B) {
	db, qs, _ := sharedDB(b)
	snap, err := db.Snapshot()
	if err != nil {
		b.Fatal(err)
	}
	defer snap.Close()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			q := qs[i%len(qs)]
			i++
			r := peb.Region{MinX: q.W.MinX, MinY: q.W.MinY, MaxX: q.W.MaxX, MaxY: q.W.MaxY}
			if _, err := snap.RangeQuery(q.Issuer, r, q.T); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSnapshotRangeQueryStream measures the streaming form of the
// snapshot query (iter.Seq2 plumbing over the same executor).
func BenchmarkSnapshotRangeQueryStream(b *testing.B) {
	db, qs, _ := sharedDB(b)
	snap, err := db.Snapshot()
	if err != nil {
		b.Fatal(err)
	}
	defer snap.Close()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := qs[i%len(qs)]
		r := peb.Region{MinX: q.W.MinX, MinY: q.W.MinY, MaxX: q.W.MaxX, MaxY: q.W.MaxY}
		for _, err := range snap.RangeQueryCtx(ctx, q.Issuer, r, q.T) {
			if err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkHeadline reproduces the paper's headline comparison at bench
// scale and prints the ratio once per run.
func BenchmarkHeadline(b *testing.B) {
	tb := sharedTestbed(b)
	qs := tb.DS.GenPRQueries(200, exp.DefaultWindowSide, exp.DefaultQueryTime)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, err := tb.MeasurePRQ(qs)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(m.PEB, "peb_ios")
		b.ReportMetric(m.Spatial, "spatial_ios")
		if m.PEB > 0 {
			b.ReportMetric(m.Spatial/m.PEB, "speedup")
		}
	}
}
